"""Multinomial (softmax) logistic regression with ridge regularization.

The linear classifier of the paper's Experiment 5 (``logreg``).  Training
minimizes the multinomial cross-entropy plus an L2 penalty on the weights
(the "weight of a ridge regularization term" is the hyperparameter the paper
tunes) using full-batch gradient descent with Adam updates, which is robust
without step-size tuning at the problem sizes considered here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier, as_2d_array, check_fitted
from repro.ml.preprocessing import LabelEncoder

__all__ = ["LogisticRegressionClassifier", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegressionClassifier(Classifier):
    """Softmax regression trained with Adam.

    Parameters
    ----------
    ridge:
        L2 regularization weight on the coefficient matrix (not the intercept).
    learning_rate, max_iter, tol:
        Optimizer controls; training stops early once the loss improvement
        over an iteration falls below ``tol``.
    fit_intercept:
        Whether to learn a per-class bias term.
    random_state:
        Seed for the (small, symmetric) weight initialization.
    """

    def __init__(
        self,
        ridge: float = 1e-3,
        learning_rate: float = 0.1,
        max_iter: int = 300,
        tol: float = 1e-6,
        fit_intercept: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        self.ridge = ridge
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.random_state = random_state
        self._weights: Optional[np.ndarray] = None
        self._intercept: Optional[np.ndarray] = None
        self._label_encoder: Optional[LabelEncoder] = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "LogisticRegressionClassifier":
        X = as_2d_array(X)
        self._label_encoder = LabelEncoder().fit(y)
        encoded = self._label_encoder.transform(y)
        num_samples, num_features = X.shape
        num_classes = len(self._label_encoder.classes_)

        one_hot = np.zeros((num_samples, num_classes))
        one_hot[np.arange(num_samples), encoded] = 1.0

        rng = np.random.default_rng(self.random_state)
        weights = rng.normal(scale=0.01, size=(num_features, num_classes))
        intercept = np.zeros(num_classes)

        # Adam state.
        m_w = np.zeros_like(weights)
        v_w = np.zeros_like(weights)
        m_b = np.zeros_like(intercept)
        v_b = np.zeros_like(intercept)
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        previous_loss = np.inf
        for iteration in range(1, self.max_iter + 1):
            logits = X @ weights
            if self.fit_intercept:
                logits = logits + intercept
            proba = softmax(logits)
            # Cross-entropy + ridge penalty.
            log_likelihood = -np.log(
                np.clip(proba[np.arange(num_samples), encoded], 1e-12, None)
            ).mean()
            loss = log_likelihood + 0.5 * self.ridge * float((weights**2).sum())

            grad_logits = (proba - one_hot) / num_samples
            grad_w = X.T @ grad_logits + self.ridge * weights
            grad_b = grad_logits.sum(axis=0)

            m_w = beta1 * m_w + (1 - beta1) * grad_w
            v_w = beta2 * v_w + (1 - beta2) * grad_w**2
            m_b = beta1 * m_b + (1 - beta1) * grad_b
            v_b = beta2 * v_b + (1 - beta2) * grad_b**2
            m_w_hat = m_w / (1 - beta1**iteration)
            v_w_hat = v_w / (1 - beta2**iteration)
            m_b_hat = m_b / (1 - beta1**iteration)
            v_b_hat = v_b / (1 - beta2**iteration)
            weights -= self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
            if self.fit_intercept:
                intercept -= self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)

            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss

        self._weights = weights
        self._intercept = intercept
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def decision_function(self, X) -> np.ndarray:
        """Raw class scores (logits) for each sample."""
        check_fitted(self, "_weights")
        X = as_2d_array(X)
        logits = X @ self._weights
        if self.fit_intercept:
            logits = logits + self._intercept
        return logits

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X))

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        encoded = proba.argmax(axis=1)
        return self._label_encoder.inverse_transform(encoded)

    @property
    def classes_(self) -> np.ndarray:
        check_fitted(self, "_label_encoder")
        return self._label_encoder.classes_

    @property
    def coef_(self) -> np.ndarray:
        """Fitted coefficient matrix of shape ``(n_features, n_classes)``."""
        check_fitted(self, "_weights")
        return self._weights.copy()
