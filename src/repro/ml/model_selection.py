"""Model selection utilities: k-fold CV, grid search, train/test split.

The paper tunes every classifier with 10-fold cross-validation over a small
hyperparameter grid; this module provides exactly that machinery.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.metrics import accuracy_score

__all__ = ["KFold", "train_test_split", "cross_val_score", "grid_search"]


class KFold:
    """Split indices into ``n_splits`` contiguous (optionally shuffled) folds."""

    def __init__(
        self, n_splits: int = 10, shuffle: bool = True, random_state: Optional[int] = None
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, num_samples: int) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if num_samples < self.n_splits:
            raise ValueError(
                f"cannot split {num_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(num_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for fold_index in range(self.n_splits):
            test = folds[fold_index]
            train = np.concatenate(
                [folds[i] for i in range(self.n_splits) if i != fold_index]
            )
            yield train, test


def train_test_split(
    X,
    y,
    test_fraction: float = 0.25,
    random_state: Optional[int] = None,
):
    """Randomly split ``(X, y)`` into train and test partitions."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must lie in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have the same length")
    rng = np.random.default_rng(random_state)
    indices = rng.permutation(len(X))
    num_test = max(1, int(round(test_fraction * len(X))))
    test_indices = indices[:num_test]
    train_indices = indices[num_test:]
    return X[train_indices], X[test_indices], y[train_indices], y[test_indices]


def cross_val_score(
    build_model: Callable[[], "object"],
    X,
    y,
    n_splits: int = 10,
    scorer: Callable = accuracy_score,
    random_state: Optional[int] = None,
) -> List[float]:
    """Cross-validated scores of a freshly built model on each fold.

    ``build_model`` is a zero-argument factory so each fold trains an
    independent, unfitted model.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    effective_splits = min(n_splits, len(X))
    if effective_splits < 2:
        raise ValueError("need at least 2 samples for cross-validation")
    kfold = KFold(n_splits=effective_splits, shuffle=True, random_state=random_state)
    scores = []
    for train_indices, test_indices in kfold.split(len(X)):
        model = build_model()
        model.fit(X[train_indices], y[train_indices])
        predictions = model.predict(X[test_indices])
        scores.append(scorer(y[test_indices], predictions))
    return scores


def grid_search(
    model_factory: Callable[..., "object"],
    param_grid: Dict[str, Sequence],
    X,
    y,
    n_splits: int = 10,
    scorer: Callable = accuracy_score,
    random_state: Optional[int] = None,
) -> Tuple[Dict, float]:
    """Exhaustive grid search with k-fold cross-validation.

    Returns the best parameter combination and its mean CV score.  The model
    factory receives the parameters as keyword arguments.
    """
    if not param_grid:
        scores = cross_val_score(
            model_factory, X, y, n_splits=n_splits, scorer=scorer, random_state=random_state
        )
        return {}, float(np.mean(scores))

    names = sorted(param_grid)
    best_params: Dict = {}
    best_score = -np.inf
    for combination in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combination))
        scores = cross_val_score(
            lambda params=params: model_factory(**params),
            X,
            y,
            n_splits=n_splits,
            scorer=scorer,
            random_state=random_state,
        )
        mean_score = float(np.mean(scores))
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return best_params, best_score
