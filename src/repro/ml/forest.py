"""Random forest classifier (Breiman, 2001).

The ensemble classifier of the paper's Experiment 5 (``rf``) and the model
the real-data experiments settle on for mapping unseen queries to buckets.
Each tree is grown on a bootstrap sample with per-split feature subsampling
(the "maximum number of features in each split" hyperparameter the paper
tunes); prediction averages the per-tree class probabilities.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.ml.base import Classifier, as_2d_array, check_fitted
from repro.ml.preprocessing import LabelEncoder
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Classifier):
    """Bagged ensemble of CART trees with feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_impurity_decrease, max_features:
        Passed through to each :class:`DecisionTreeClassifier`;
        ``max_features`` defaults to ``"sqrt"`` as is conventional.
    bootstrap:
        Whether each tree sees a bootstrap resample of the training data.
    random_state:
        Seed controlling bootstraps and per-tree feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_impurity_decrease: float = 0.0,
        max_features: Union[None, int, float, str] = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self._trees: Optional[List[DecisionTreeClassifier]] = None
        self._label_encoder: Optional[LabelEncoder] = None

    def fit(self, X, y) -> "RandomForestClassifier":
        X = as_2d_array(X)
        self._label_encoder = LabelEncoder().fit(y)
        encoded = self._label_encoder.transform(y)
        num_samples = X.shape[0]
        rng = np.random.default_rng(self.random_state)

        trees: List[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_impurity_decrease=self.min_impurity_decrease,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31)),
            )
            if self.bootstrap:
                indices = rng.integers(0, num_samples, size=num_samples)
            else:
                indices = np.arange(num_samples)
            tree.fit(X[indices], encoded[indices])
            trees.append(tree)
        self._trees = trees
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "_trees")
        X = as_2d_array(X)
        num_classes = len(self._label_encoder.classes_)
        aggregate = np.zeros((X.shape[0], num_classes))
        for tree in self._trees:
            tree_proba = tree.predict_proba(X)
            # Trees may have seen a subset of classes in their bootstrap;
            # align their probability columns onto the forest's label space.
            tree_classes = tree.classes_
            for column, label in enumerate(tree_classes):
                aggregate[:, int(label)] += tree_proba[:, column]
        return aggregate / self.n_estimators

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self._label_encoder.inverse_transform(proba.argmax(axis=1))

    @property
    def classes_(self) -> np.ndarray:
        check_fitted(self, "_label_encoder")
        return self._label_encoder.classes_

    @property
    def estimators_(self) -> List[DecisionTreeClassifier]:
        """The fitted trees."""
        check_fitted(self, "_trees")
        return list(self._trees)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean of the per-tree Gini importances (normalized to sum to 1)."""
        check_fitted(self, "_trees")
        stacked = np.vstack([tree.feature_importances_ for tree in self._trees])
        importances = stacked.mean(axis=0)
        total = importances.sum()
        return importances / total if total > 0 else importances
