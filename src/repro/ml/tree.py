"""CART decision-tree classifier.

The tree-based classifier of the paper's Experiment 5 (``cart``) and the
base learner of the random forest.  Splits minimize weighted Gini impurity;
the hyperparameters the paper tunes — ``max_depth`` and
``min_impurity_decrease`` — are supported, along with ``max_features`` used
by the forest for per-split feature subsampling.

The split search is vectorized per feature: candidate thresholds are the
midpoints between consecutive sorted values, and class-count prefix sums give
the impurity of every candidate split in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.ml.base import Classifier, as_2d_array, check_fitted
from repro.ml.preprocessing import LabelEncoder

__all__ = ["DecisionTreeClassifier", "gini_impurity"]


def gini_impurity(class_counts: np.ndarray) -> float:
    """Gini impurity of a node given its per-class counts."""
    total = class_counts.sum()
    if total == 0:
        return 0.0
    proportions = class_counts / total
    return float(1.0 - np.sum(proportions**2))


@dataclass
class _Node:
    """A tree node: either a split (feature, threshold) or a leaf."""

    prediction: int
    class_counts: np.ndarray
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeClassifier(Classifier):
    """CART classifier with Gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity or ``min_samples_split``.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_impurity_decrease:
        Minimum weighted impurity decrease required to accept a split.
    max_features:
        Number of features examined per split: an int, a float fraction,
        ``"sqrt"``, ``"log2"``, or ``None`` for all features.
    random_state:
        Seed controlling feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_impurity_decrease: float = 0.0,
        max_features: Union[None, int, float, str] = None,
        random_state: Optional[int] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self._label_encoder: Optional[LabelEncoder] = None
        self._num_features: Optional[int] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = as_2d_array(X)
        self._label_encoder = LabelEncoder().fit(y)
        encoded = self._label_encoder.transform(y)
        self._num_classes = len(self._label_encoder.classes_)
        self._num_features = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._num_training_samples = X.shape[0]
        self._importances = np.zeros(self._num_features)
        self._root = self._build(X, encoded, depth=0)
        total = self._importances.sum()
        self._importances = (
            self._importances / total if total > 0 else self._importances
        )
        return self

    def _resolve_max_features(self) -> int:
        total = self._num_features
        value = self.max_features
        if value is None:
            return total
        if value == "sqrt":
            return max(1, int(np.sqrt(total)))
        if value == "log2":
            return max(1, int(np.log2(total))) if total > 1 else 1
        if isinstance(value, float):
            return max(1, int(round(value * total)))
        if isinstance(value, int):
            return max(1, min(value, total))
        raise ValueError(f"invalid max_features: {value!r}")

    def _class_counts(self, encoded_labels: np.ndarray) -> np.ndarray:
        return np.bincount(encoded_labels, minlength=self._num_classes).astype(float)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(y)
        node = _Node(prediction=int(counts.argmax()), class_counts=counts)
        num_samples = len(y)

        if (
            num_samples < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or counts.max() == num_samples  # pure node
        ):
            return node

        split = self._best_split(X, y, counts)
        if split is None:
            return node
        feature, threshold, impurity_decrease = split
        if impurity_decrease < self.min_impurity_decrease:
            return node

        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        # Importance: impurity decrease weighted by the fraction of training
        # samples reaching this node (the standard "Gini importance").
        self._importances[feature] += (
            num_samples / self._num_training_samples
        ) * impurity_decrease
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray, parent_counts: np.ndarray):
        """Return ``(feature, threshold, impurity_decrease)`` or None."""
        num_samples = len(y)
        parent_impurity = gini_impurity(parent_counts)
        num_candidates = self._resolve_max_features()
        if num_candidates < self._num_features:
            features = self._rng.choice(self._num_features, size=num_candidates, replace=False)
        else:
            features = np.arange(self._num_features)

        best = None
        best_decrease = -np.inf
        one_hot = np.zeros((num_samples, self._num_classes))
        one_hot[np.arange(num_samples), y] = 1.0

        for feature in features:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            # Candidate split positions: between distinct consecutive values.
            distinct = sorted_values[1:] != sorted_values[:-1]
            if not distinct.any():
                continue
            # Prefix class counts after each position (left side of the split).
            left_counts = np.cumsum(one_hot[order], axis=0)[:-1]
            right_counts = parent_counts - left_counts
            left_sizes = np.arange(1, num_samples)
            right_sizes = num_samples - left_sizes

            left_gini = 1.0 - np.sum(
                (left_counts / left_sizes[:, None]) ** 2, axis=1
            )
            right_gini = 1.0 - np.sum(
                (right_counts / right_sizes[:, None]) ** 2, axis=1
            )
            weighted = (left_sizes * left_gini + right_sizes * right_gini) / num_samples
            weighted[~distinct] = np.inf  # cannot split between equal values

            position = int(np.argmin(weighted))
            decrease = parent_impurity - weighted[position]
            # Zero-gain splits are kept (CART's behaviour): they can enable
            # gainful splits deeper down (e.g. XOR-style interactions);
            # ``min_impurity_decrease`` is the knob that prunes them.
            if decrease > best_decrease + 1e-12:
                threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
                best = (int(feature), float(threshold), float(decrease))
                best_decrease = decrease
        return best

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _leaf_for(self, row: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X) -> np.ndarray:
        check_fitted(self, "_root")
        X = as_2d_array(X)
        encoded = np.array([self._leaf_for(row).prediction for row in X], dtype=int)
        return self._label_encoder.inverse_transform(encoded)

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "_root")
        X = as_2d_array(X)
        proba = np.zeros((X.shape[0], self._num_classes))
        for row_index, row in enumerate(X):
            counts = self._leaf_for(row).class_counts
            total = counts.sum()
            proba[row_index] = counts / total if total > 0 else 1.0 / self._num_classes
        return proba

    @property
    def classes_(self) -> np.ndarray:
        check_fitted(self, "_label_encoder")
        return self._label_encoder.classes_

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalized Gini importances of the features (sum to 1 if any split)."""
        check_fitted(self, "_root")
        return self._importances.copy()

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        check_fitted(self, "_root")

        def _depth(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    def num_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        check_fitted(self, "_root")

        def _leaves(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return _leaves(node.left) + _leaves(node.right)

        return _leaves(self._root)
