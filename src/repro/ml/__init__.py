"""Machine-learning substrate.

The paper uses scikit-learn's multinomial logistic regression, CART and
random forest as the classifier ``h_U`` that maps unseen elements to buckets
(and, for the LCMS baseline, as heavy-hitter predictors).  scikit-learn is
not a dependency of this library, so the same model families are implemented
here from scratch on top of numpy:

* :class:`~repro.ml.logistic.LogisticRegressionClassifier` — multinomial
  (softmax) logistic regression with ridge regularization.
* :class:`~repro.ml.tree.DecisionTreeClassifier` — CART with Gini impurity,
  ``max_depth`` and ``min_impurity_decrease`` controls.
* :class:`~repro.ml.forest.RandomForestClassifier` — bagged CART ensemble
  with per-split feature subsampling.

Plus the supporting machinery the experiments need: k-fold cross-validation
and grid search (:mod:`~repro.ml.model_selection`), label encoding and
feature scaling (:mod:`~repro.ml.preprocessing`), classification metrics
(:mod:`~repro.ml.metrics`), and the bag-of-words query featurizer of
Section 7.3 (:mod:`~repro.ml.text`).
"""

from repro.ml.base import Classifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import (
    KFold,
    cross_val_score,
    grid_search,
    train_test_split,
)
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.metrics import accuracy_score, confusion_matrix, macro_f1_score
from repro.ml.text import QueryFeaturizer, basic_text_counts

__all__ = [
    "Classifier",
    "LogisticRegressionClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KFold",
    "cross_val_score",
    "grid_search",
    "train_test_split",
    "LabelEncoder",
    "StandardScaler",
    "accuracy_score",
    "confusion_matrix",
    "macro_f1_score",
    "QueryFeaturizer",
    "basic_text_counts",
    "make_classifier",
]


def make_classifier(name: str, **kwargs) -> Classifier:
    """Instantiate a classifier by its short name used in the paper.

    ``"logreg"`` → logistic regression, ``"cart"`` → decision tree,
    ``"rf"`` → random forest.
    """
    registry = {
        "logreg": LogisticRegressionClassifier,
        "cart": DecisionTreeClassifier,
        "rf": RandomForestClassifier,
    }
    if name not in registry:
        raise ValueError(f"unknown classifier '{name}'; expected one of {sorted(registry)}")
    return registry[name](**kwargs)
