"""Common classifier interface.

All classifiers in :mod:`repro.ml` follow the familiar fit/predict protocol
(deliberately close to scikit-learn's, since the paper's experiments are
phrased in those terms), operating on dense numpy arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = ["Classifier", "check_fitted", "as_2d_array"]


def as_2d_array(X) -> np.ndarray:
    """Coerce input features to a 2-D float array."""
    array = np.asarray(X, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {array.shape}")
    return array


def check_fitted(estimator, attribute: str) -> None:
    """Raise a clear error if ``estimator`` has not been fitted yet."""
    if getattr(estimator, attribute, None) is None:
        raise RuntimeError(
            f"{type(estimator).__name__} must be fitted before calling predict"
        )


class Classifier(ABC):
    """Abstract multi-class classifier with fit/predict/predict_proba."""

    @abstractmethod
    def fit(self, X, y) -> "Classifier":
        """Fit the model on features ``X`` (n, p) and integer labels ``y``."""

    @abstractmethod
    def predict(self, X) -> np.ndarray:
        """Predict labels for ``X``; returns an ``(n,)`` array."""

    def predict_proba(self, X) -> np.ndarray:
        """Predict class-membership probabilities; shape ``(n, n_classes)``.

        The default implementation one-hot encodes the hard predictions;
        probabilistic models override it.
        """
        predictions = self.predict(X)
        classes = self.classes_
        proba = np.zeros((len(predictions), len(classes)))
        class_to_index = {c: i for i, c in enumerate(classes)}
        for row, label in enumerate(predictions):
            proba[row, class_to_index[label]] = 1.0
        return proba

    @property
    def classes_(self) -> np.ndarray:
        """The sorted array of class labels seen during fit."""
        raise NotImplementedError

    def score(self, X, y: Sequence[int]) -> float:
        """Mean accuracy on the given test data."""
        predictions = self.predict(X)
        y = np.asarray(y)
        return float(np.mean(predictions == y))

    def get_params(self) -> dict:
        """Return constructor parameters (public attributes set in __init__)."""
        return {
            name: value
            for name, value in vars(self).items()
            if not name.startswith("_") and not name.endswith("_")
        }
