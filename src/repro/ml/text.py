"""Query-text featurization (paper Section 7.3).

For the real-data experiments the classifier's input features are built from
the query text with a deliberately simple and interpretable recipe:

* a bag-of-words indicator over the ``K`` most common words in the training
  queries (``K = 500`` in the paper), and
* four count features: number of ASCII characters, number of punctuation
  marks, number of dots, and number of whitespace characters.

:class:`QueryFeaturizer` implements exactly that; it is fit on the prefix
queries and then applied to any query string (seen or unseen).
"""

from __future__ import annotations

import string
from collections import Counter
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["basic_text_counts", "QueryFeaturizer"]

_PUNCTUATION = set(string.punctuation)


def basic_text_counts(text: str) -> List[float]:
    """The four count features of Section 7.3.

    Returns ``[ascii_chars, punctuation_marks, dots, whitespaces]``.
    """
    ascii_chars = sum(1 for ch in text if ord(ch) < 128)
    punctuation = sum(1 for ch in text if ch in _PUNCTUATION)
    dots = text.count(".")
    whitespaces = sum(1 for ch in text if ch.isspace())
    return [float(ascii_chars), float(punctuation), float(dots), float(whitespaces)]


def _tokenize(text: str) -> List[str]:
    """Lowercase and split on non-alphanumeric characters."""
    tokens: List[str] = []
    current: List[str] = []
    for ch in text.lower():
        if ch.isalnum():
            current.append(ch)
        elif current:
            tokens.append("".join(current))
            current = []
    if current:
        tokens.append("".join(current))
    return tokens


class QueryFeaturizer:
    """Bag-of-words + count features over query strings.

    Parameters
    ----------
    vocabulary_size:
        Number of most-common training words to keep (500 in the paper).
    binary:
        If True (default), word features are presence indicators; otherwise
        they are occurrence counts within the query.
    """

    def __init__(self, vocabulary_size: int = 500, binary: bool = True) -> None:
        if vocabulary_size < 0:
            raise ValueError("vocabulary_size must be non-negative")
        self.vocabulary_size = vocabulary_size
        self.binary = binary
        self.vocabulary_: Optional[List[str]] = None
        self._word_index = {}

    def fit(self, queries: Iterable[str]) -> "QueryFeaturizer":
        """Learn the vocabulary from training queries."""
        counts: Counter = Counter()
        for query in queries:
            counts.update(_tokenize(query))
        most_common = [word for word, _ in counts.most_common(self.vocabulary_size)]
        self.vocabulary_ = most_common
        self._word_index = {word: i for i, word in enumerate(most_common)}
        return self

    @property
    def num_features(self) -> int:
        """Dimensionality of the produced feature vectors."""
        if self.vocabulary_ is None:
            raise RuntimeError("QueryFeaturizer must be fitted first")
        return len(self.vocabulary_) + 4

    def transform_one(self, query: str) -> np.ndarray:
        """Featurize a single query string."""
        if self.vocabulary_ is None:
            raise RuntimeError("QueryFeaturizer must be fitted first")
        vector = np.zeros(self.num_features)
        for token in _tokenize(query):
            index = self._word_index.get(token)
            if index is not None:
                if self.binary:
                    vector[index] = 1.0
                else:
                    vector[index] += 1.0
        vector[len(self.vocabulary_):] = basic_text_counts(query)
        return vector

    def transform(self, queries: Sequence[str]) -> np.ndarray:
        """Featurize a sequence of queries into an ``(n, p)`` matrix."""
        return np.array([self.transform_one(query) for query in queries])

    def fit_transform(self, queries: Sequence[str]) -> np.ndarray:
        return self.fit(queries).transform(queries)

    def feature_names(self) -> List[str]:
        """Names of all features (words followed by the four counts)."""
        if self.vocabulary_ is None:
            raise RuntimeError("QueryFeaturizer must be fitted first")
        return list(self.vocabulary_) + [
            "num_ascii_chars",
            "num_punctuation",
            "num_dots",
            "num_whitespaces",
        ]
