"""Preprocessing utilities: label encoding and feature standardization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import as_2d_array

__all__ = ["LabelEncoder", "StandardScaler"]


class LabelEncoder:
    """Map arbitrary (sortable) labels to contiguous integers ``0..K-1``."""

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before transform")
        y = np.asarray(y)
        indices = np.searchsorted(self.classes_, y)
        valid = (indices < len(self.classes_)) & (self.classes_[np.minimum(indices, len(self.classes_) - 1)] == y)
        if not np.all(valid):
            unknown = np.unique(y[~valid])
            raise ValueError(f"unseen labels in transform: {unknown.tolist()}")
        return indices

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, indices) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before inverse_transform")
        return self.classes_[np.asarray(indices, dtype=int)]


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled so they
    do not blow up to NaN.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X) -> "StandardScaler":
        X = as_2d_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = as_2d_array(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
