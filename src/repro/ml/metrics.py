"""Classification metrics used for tuning and reporting."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy_score", "confusion_matrix", "macro_f1_score"]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if len(y_true) == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[i, j]`` = true class i predicted as j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true, pred in zip(y_true, y_pred):
        matrix[index[true], index[pred]] += 1
    return matrix


def macro_f1_score(y_true, y_pred) -> float:
    """Unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(y_true, y_pred)
    f1_scores = []
    for class_index in range(matrix.shape[0]):
        true_positive = matrix[class_index, class_index]
        false_positive = matrix[:, class_index].sum() - true_positive
        false_negative = matrix[class_index, :].sum() - true_positive
        denominator = 2 * true_positive + false_positive + false_negative
        f1_scores.append(0.0 if denominator == 0 else 2 * true_positive / denominator)
    return float(np.mean(f1_scores))
