"""Pluggable counter-storage backends for the table sketches.

Every table sketch in the library — Count-Min, Count Sketch, AMS, the Bloom
filter — is, at heart, one dense counter array.  This module makes *where
that array lives* a configuration choice instead of a hard-coded
``np.zeros``:

* ``dense`` (default): a process-private NumPy array, exactly what the
  sketches always used.  Zero overhead, no cross-process story.
* ``shm``: the array lives in a named POSIX shared-memory segment
  (:mod:`multiprocessing.shared_memory`).  Any process that knows the
  segment name can attach a zero-copy view — this is what makes the sharded
  estimator's shm transport possible: worker processes scatter directly
  into the parent's tables and nothing is serialized on the return leg.
* ``mmap``: the array is a file-backed :class:`numpy.memmap`.  Counter
  updates hit the page cache and survive process death, giving
  crash-recoverable persistence and snapshot/restore without copying the
  table (the snapshot records the path; restore reattaches the file).

All three backends expose the same contract: :attr:`CounterStorage.array`
is a live, writable ndarray of the requested shape/dtype, and every NumPy
kernel the sketches run (``np.add.at``, gathers, in-place ``+=`` / ``|=``)
works identically on it — which is why estimates are bit-identical across
backends.

:class:`StorageBacked` is the mixin the sketches use to thread the backend
through construction, serialization (including zero-copy "live" mmap
snapshots), cross-process adoption (the worker side of the shm transport),
and resource release.
"""

from __future__ import annotations

import os
import tempfile
import uuid
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.sketches.serialization import SerializationError

__all__ = [
    "StorageError",
    "CounterStorage",
    "DenseStorage",
    "SharedMemoryStorage",
    "MmapStorage",
    "StorageBacked",
    "allocate",
    "attach",
    "check_storage_params",
    "STORAGE_BACKENDS",
    "STORAGE_SCHEMA",
]

#: The supported counter-storage backends, in spec order.
STORAGE_BACKENDS = ("dense", "shm", "mmap")

#: Schema fragment every storage-capable sketch merges into its spec schema.
#: The registry treats the presence of the ``storage`` field as the signal
#: that a kind supports pluggable storage (``kind_supports_storage``).
STORAGE_SCHEMA = {
    "storage": {"type": "str", "choices": STORAGE_BACKENDS},
    "storage_path": {"type": "str", "nullable": True},
}


# Canonical definition lives in repro.errors (common ReproError base);
# this module remains its permanent public import path.
from repro.errors import StorageError  # noqa: E402


def check_storage_params(params: dict) -> None:
    """Cross-field spec check: ``storage_path`` only makes sense for mmap."""
    from repro.api.specs import SpecError

    if params.get("storage_path") is not None and params.get("storage") != "mmap":
        raise SpecError(
            "storage_path is only meaningful with storage='mmap' (dense "
            "tables have no file, shm segments are named automatically)"
        )


#: Segment names created by THIS process.  Attaching to a foreign segment
#: must untrack it (see :func:`_untrack_shm`); attaching to one of our own
#: must NOT, or the owner's eventual unlink double-unregisters.
_OWNED_SHM_NAMES: set = set()


def _untrack_shm(shm) -> None:
    """Detach an *attached* foreign segment from Python's resource tracker.

    Only the creating process owns unlink.  Without this, a spawned process
    that attaches registers the name with its own resource tracker, which
    unlinks the segment at that process's exit — destroying the owner's
    live table — and prints leak warnings.  Python 3.13+ exposes
    ``track=False`` for the same purpose; this works on every version the
    CI matrix runs.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class CounterStorage:
    """Abstract owner of one counter array.

    Subclasses set :attr:`backend` and fill :attr:`_array`; the common
    lifecycle (idempotent close, manifest description) lives here.
    """

    backend = "abstract"

    def __init__(self) -> None:
        self._array: Optional[np.ndarray] = None
        self.owner = True
        self._closed = False

    @property
    def array(self) -> np.ndarray:
        """The live counter array (raises after :meth:`close`)."""
        if self._array is None:
            raise StorageError(f"{self.backend} storage is closed")
        return self._array

    @property
    def closed(self) -> bool:
        return self._closed

    def flush(self) -> None:
        """Push pending writes to the backing store (no-op unless mmap)."""

    def describe_state(self) -> Dict[str, Any]:
        """JSON-safe attach manifest: backend + address + shape/dtype."""
        raise StorageError(
            f"{self.backend} storage cannot be attached from another process"
        )

    def close(self) -> None:
        """Release handles/views.  Idempotent; owned shm segments unlink."""
        self._closed = True
        self._array = None

    def unlink(self) -> None:
        """Destroy the backing resource (shm segment / mmap file)."""

    def __del__(self) -> None:  # best-effort hygiene, never raises
        try:
            self.close()
        except Exception:
            pass


class DenseStorage(CounterStorage):
    """Process-private array — today's ``np.zeros``, the default backend."""

    backend = "dense"

    def __init__(self, shape, dtype, initial: Optional[np.ndarray] = None) -> None:
        super().__init__()
        dtype = np.dtype(dtype)
        if initial is None:
            self._array = np.zeros(shape, dtype=dtype)
        else:
            # Adopt without copying when the buffer already has the right
            # dtype (unpack() hands us fresh writable arrays).
            self._array = np.asarray(initial, dtype=dtype).reshape(shape)


class SharedMemoryStorage(CounterStorage):
    """Named shared-memory table; any process can attach a zero-copy view."""

    backend = "shm"

    def __init__(
        self,
        shape,
        dtype,
        initial: Optional[np.ndarray] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__()
        from multiprocessing import shared_memory

        dtype = np.dtype(dtype)
        shape = tuple(int(dim) for dim in shape)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        try:
            if name is None:
                self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
                self.owner = True
                _OWNED_SHM_NAMES.add(self._shm.name)
            else:
                self._shm = shared_memory.SharedMemory(name=name)
                self.owner = False
                if self._shm.name not in _OWNED_SHM_NAMES:
                    _untrack_shm(self._shm)
        except OSError as error:
            raise StorageError(f"shared-memory allocation failed: {error}") from error
        if not self.owner and self._shm.size < nbytes:
            self._shm.close()
            raise StorageError(
                f"shared-memory segment {name!r} holds {self._shm.size} bytes, "
                f"need {nbytes}"
            )
        self._shape = shape
        self._dtype = dtype
        self._array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        if self.owner:
            self._array[...] = 0 if initial is None else initial

    @property
    def name(self) -> str:
        return self._shm.name

    def describe_state(self) -> Dict[str, Any]:
        return {
            "backend": "shm",
            "name": self._shm.name,
            "shape": list(self._shape),
            "dtype": self._dtype.str,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._array = None
        try:
            self._shm.close()
        except BufferError:
            # A view still pins the buffer somewhere; the OS mapping is
            # released when the last view dies.  Unlink below still works.
            pass
        if self.owner:
            self.unlink()

    def unlink(self) -> None:
        _OWNED_SHM_NAMES.discard(self._shm.name)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class MmapStorage(CounterStorage):
    """File-backed table: counters survive the process, restore is reattach."""

    backend = "mmap"

    def __init__(
        self,
        shape,
        dtype,
        path: Optional[str] = None,
        initial: Optional[np.ndarray] = None,
        create: bool = True,
    ) -> None:
        super().__init__()
        dtype = np.dtype(dtype)
        shape = tuple(int(dim) for dim in shape)
        if path is None:
            if not create:
                raise StorageError("attaching mmap storage requires a path")
            path = os.path.join(
                tempfile.gettempdir(), f"repro-table-{uuid.uuid4().hex}.bin"
            )
        self.path = os.fspath(path)
        self.owner = create
        if create and initial is None:
            # A fresh *blank* table must never silently zero a surviving
            # one: re-running the same mmap spec after a crash is exactly
            # the moment the file holds the data worth recovering.  (An
            # explicit ``initial`` — restoring a snapshot to a path — is a
            # deliberate overwrite and stays allowed.)
            try:
                existing = os.path.getsize(self.path)
            except OSError:
                existing = 0
            if existing > 0:
                raise StorageError(
                    f"mmap table {self.path!r} already exists; refusing to "
                    "zero a surviving counter table — reattach it via its "
                    "snapshot (repro.restore) or manifest (attach), or "
                    "delete the file for a fresh table"
                )
        if not create:
            # np.memmap in "r+" silently *grows* a short file; a truncated
            # table must surface as an error, not as phantom zero counters.
            nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
            try:
                actual = os.path.getsize(self.path)
            except OSError as error:
                raise StorageError(
                    f"cannot attach mmap table at {self.path!r}: {error}"
                ) from error
            if actual < nbytes:
                raise StorageError(
                    f"mmap table {self.path!r} holds {actual} bytes, "
                    f"need {nbytes}"
                )
        try:
            self._array = np.memmap(
                self.path, dtype=dtype, mode="w+" if create else "r+", shape=shape
            )
        except (OSError, ValueError) as error:
            raise StorageError(
                f"cannot {'create' if create else 'attach'} mmap table at "
                f"{self.path!r}: {error}"
            ) from error
        self._shape = shape
        self._dtype = dtype
        if create and initial is not None:
            self._array[...] = initial

    def flush(self) -> None:
        if self._array is not None:
            self._array.flush()

    def describe_state(self) -> Dict[str, Any]:
        return {
            "backend": "mmap",
            "path": self.path,
            "shape": list(self._shape),
            "dtype": self._dtype.str,
        }

    def close(self) -> None:
        """Flush and release the mapping.  The file is *kept* — that
        persistence is the point of the backend; use :meth:`unlink` to
        delete it."""
        if self._closed:
            return
        self._closed = True
        array, self._array = self._array, None
        if array is not None:
            try:
                array.flush()
            except (OSError, ValueError):
                pass
            mm = getattr(array, "_mmap", None)
            del array
            if mm is not None:
                try:
                    mm.close()
                except BufferError:
                    pass

    def unlink(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def allocate(
    shape,
    dtype,
    backend: str = "dense",
    path: Optional[str] = None,
    initial: Optional[np.ndarray] = None,
) -> CounterStorage:
    """Allocate a fresh counter table on the requested backend."""
    if backend == "dense":
        if path is not None:
            raise StorageError("dense storage takes no path")
        return DenseStorage(shape, dtype, initial=initial)
    if backend == "shm":
        if path is not None:
            raise StorageError(
                "shm segments are named automatically; storage_path is "
                "mmap-only"
            )
        return SharedMemoryStorage(shape, dtype, initial=initial)
    if backend == "mmap":
        return MmapStorage(shape, dtype, path=path, initial=initial, create=True)
    raise StorageError(
        f"unknown storage backend {backend!r}; expected one of {STORAGE_BACKENDS}"
    )


def attach(manifest: Dict[str, Any]) -> CounterStorage:
    """Attach a zero-copy view of storage described by a manifest.

    The manifest is what :meth:`CounterStorage.describe_state` produced in
    the owning process — JSON-safe, so it crosses process boundaries (and
    serialized snapshots) trivially.
    """
    try:
        backend = manifest["backend"]
        shape = tuple(int(dim) for dim in manifest["shape"])
        dtype = np.dtype(manifest["dtype"])
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(f"malformed storage manifest: {error}") from error
    if backend == "shm":
        return SharedMemoryStorage(shape, dtype, name=manifest.get("name"))
    if backend == "mmap":
        return MmapStorage(shape, dtype, path=manifest.get("path"), create=False)
    raise StorageError(f"backend {backend!r} cannot be attached")


class StorageBacked:
    """Mixin threading a :class:`CounterStorage` through a table sketch.

    A subclass names its counter attribute via ``_STORAGE_FIELD`` (e.g.
    ``"_table"`` for Count-Min) and calls :meth:`_init_storage` from its
    constructor; the mixin then provides the backend property, the
    cross-process adoption used by shard workers, serialization state
    (including zero-copy live mmap snapshots), and an idempotent
    :meth:`close` that releases the backend while keeping the sketch
    queryable from a detached dense copy.
    """

    _STORAGE_FIELD = "_table"

    # ------------------------------------------------------------------
    # allocation / introspection
    # ------------------------------------------------------------------
    def _init_storage(
        self,
        shape,
        dtype,
        storage: str = "dense",
        storage_path: Optional[str] = None,
        initial: Optional[np.ndarray] = None,
    ) -> None:
        if storage not in STORAGE_BACKENDS:
            raise ValueError(
                f"storage must be one of {STORAGE_BACKENDS}, got {storage!r}"
            )
        if storage_path is not None and storage != "mmap":
            raise ValueError(
                "storage_path is only meaningful with storage='mmap'"
            )
        self._storage = allocate(
            shape, dtype, storage, path=storage_path, initial=initial
        )
        setattr(self, self._STORAGE_FIELD, self._storage.array)

    @property
    def storage_backend(self) -> str:
        """Which backend holds the counter table (dense / shm / mmap)."""
        return self._storage.backend

    @property
    def storage_path(self) -> Optional[str]:
        """Backing file of an mmap table; None for the other backends."""
        return getattr(self._storage, "path", None)

    def storage_manifest(self) -> Dict[str, Any]:
        """JSON-safe manifest another process can :func:`attach` to."""
        return self._storage.describe_state()

    def flush_storage(self) -> None:
        """Flush pending counter writes to the backing store (mmap)."""
        self._storage.flush()

    # ------------------------------------------------------------------
    # cross-process adoption (worker side of the shm transport)
    # ------------------------------------------------------------------
    def adopt_storage(self, manifest: Dict[str, Any]) -> "StorageBacked":
        """Swap the counter array for an attached view of foreign storage.

        The shard worker builds a blank twin from the spec (identical
        shape/dtype/hashes), then adopts the parent's shm table — after
        which every update scatters directly into shared memory.
        """
        attached = attach(manifest)
        expected = getattr(self, self._STORAGE_FIELD)
        if (
            attached.array.shape != expected.shape
            or attached.array.dtype != expected.dtype
        ):
            mismatch = (attached.array.shape, attached.array.dtype)
            attached.close()
            raise StorageError(
                f"storage manifest describes {mismatch}, sketch expects "
                f"({expected.shape}, {expected.dtype})"
            )
        old = getattr(self, "_storage", None)
        self._storage = attached
        setattr(self, self._STORAGE_FIELD, attached.array)
        if old is not None:
            old.close()
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, detach: bool = True) -> None:
        """Release the storage backend (idempotent).

        With ``detach=True`` (default) the current counters are first
        copied into a private dense array, so the sketch keeps answering
        queries after close.  ``detach=False`` skips that copy — for
        objects being discarded outright (deserialization replacements,
        worker shutdown), where copying a large table would be pure waste;
        the sketch must not be used afterwards.  Either way, owned shm
        segments are unlinked and mmap handles flushed and closed (the
        file is kept — it is the persistence).
        """
        storage = getattr(self, "_storage", None)
        if storage is None or storage.closed:
            return
        if storage.backend != "dense" and detach:
            detached = np.array(getattr(self, self._STORAGE_FIELD))
            self._storage = DenseStorage(detached.shape, detached.dtype, detached)
            setattr(self, self._STORAGE_FIELD, self._storage.array)
        storage.close()

    # ------------------------------------------------------------------
    # serialization plumbing
    # ------------------------------------------------------------------
    def _storage_serial_state(self, live: bool = False) -> Dict[str, Any]:
        """State-dict fragment recording the backend for ``to_bytes``.

        ``live=True`` produces the zero-copy mmap form: the table is *not*
        embedded in the buffer — only the file path travels, after a flush —
        so snapshotting is O(1) in the table size and restore reattaches the
        file in place.
        """
        if live:
            if self.storage_backend != "mmap":
                raise SerializationError(
                    "live (zero-copy) snapshots require the mmap backend; "
                    f"this sketch uses {self.storage_backend!r}"
                )
            self._storage.flush()
            return {
                "storage": "mmap",
                "storage_live": True,
                "storage_state": self._storage.describe_state(),
            }
        if self.storage_backend == "dense":
            return {}
        return {"storage": self.storage_backend}

    def _restore_storage(
        self,
        state: dict,
        array: Optional[np.ndarray],
        shape: Tuple[int, ...],
        dtype,
        storage: Optional[str] = None,
        storage_path: Optional[str] = None,
    ) -> None:
        """Rebuild storage from serialized state (the ``from_bytes`` side).

        ``array`` is the embedded table (None for live mmap snapshots).
        ``storage``/``storage_path`` override the recorded backend, which is
        what makes buffers load interchangeably across backends: any sketch
        serialized on any backend restores onto any other.
        """
        dtype = np.dtype(dtype)
        if array is None:
            if not state.get("storage_live"):
                raise SerializationError("buffer carries no counter table")
            if storage not in (None, "mmap"):
                raise SerializationError(
                    "a live mmap snapshot holds no table data; it can only "
                    f"restore onto the mmap backend, not {storage!r}"
                )
            manifest = state.get("storage_state") or {}
            path = storage_path or manifest.get("path")
            if not path:
                raise SerializationError(
                    "live snapshot is missing its storage path"
                )
            try:
                self._storage = MmapStorage(shape, dtype, path=path, create=False)
            except StorageError as error:
                raise SerializationError(str(error)) from error
        else:
            backend = storage if storage is not None else state.get("storage", "dense")
            initial = np.ascontiguousarray(array, dtype=dtype).reshape(shape)
            try:
                self._storage = allocate(
                    shape, dtype, backend, path=storage_path, initial=initial
                )
            except StorageError as error:
                raise SerializationError(str(error)) from error
        setattr(self, self._STORAGE_FIELD, self._storage.array)
