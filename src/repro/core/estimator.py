"""Streaming estimators built on a learned hashing scheme (paper Sections 3 & 5).

Both estimators keep, per bucket, an aggregate frequency ``φ_j`` and an
element count ``c_j``; a point query answers the bucket's *average*
frequency ``φ_j / c_j``.  They differ in how arrivals after the prefix are
handled:

* :class:`OptHashEstimator` — the static approach: only elements that
  appeared in the prefix update their bucket's counter; unseen elements are
  estimated from the prefix statistics of the bucket the classifier puts
  them in.
* :class:`AdaptiveOptHashEstimator` — the Section 5.3 extension: a Bloom
  filter tracks which elements have been seen, every arrival increments its
  bucket's frequency, and first-time arrivals also increment the bucket's
  element count.  Bloom false positives can only depress ``c_j``, so the
  extension overestimates, never underestimates, relative to exact bucket
  averages.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.api.registry import register_estimator
from repro.api.specs import OptHashSpec
from repro.core.scheme import OptHashScheme
from repro.sketches.base import (
    BYTES_PER_BUCKET,
    FrequencyEstimator,
    IncompatibleSketchError,
    as_key_batch,
)
from repro.sketches.bloom import BloomFilter
from repro.streams.stream import Element

__all__ = ["OptHashEstimator", "AdaptiveOptHashEstimator"]


def _build_opt_hash(cls, spec, context):
    """Registry builder: run the learning phase and return the estimator.

    ``context['prefix']`` (guaranteed non-None by ``build``) is the observed
    stream prefix; ``context['featurizer']`` optionally maps elements to
    classifier features.  The spec's ``adaptive`` flag decides which of the
    two estimator classes comes back, so both kinds share this builder.
    """
    from repro.api.registry import config_from_spec
    from repro.core.pipeline import train_opt_hash

    training = train_opt_hash(
        context["prefix"], config_from_spec(spec), featurizer=context.get("featurizer")
    )
    return training.estimator


def _check_mergeable_schemes(first, second) -> None:
    """Merged opt-hash estimators must route every key identically.

    The exact hash tables must agree; the classifier is compared by identity
    only (two shards built from the same training run share the object).
    """
    if first.scheme is second.scheme:
        return
    if first.scheme.num_buckets != second.scheme.num_buckets:
        raise IncompatibleSketchError(
            f"bucket count mismatch: {first.scheme.num_buckets} vs "
            f"{second.scheme.num_buckets}"
        )
    if first.scheme.key_to_bucket != second.scheme.key_to_bucket:
        raise IncompatibleSketchError(
            "hash tables differ: merged estimators must assign every stored "
            "key to the same bucket"
        )
    if first.scheme.classifier is not second.scheme.classifier:
        raise IncompatibleSketchError(
            "classifiers differ: merged estimators must share the unseen-"
            "element classifier"
        )


@register_estimator(
    "opt_hash",
    spec_cls=OptHashSpec,
    builder=_build_opt_hash,
    requires_training=True,
)
class OptHashEstimator(FrequencyEstimator):
    """The static opt-hash estimator.

    Parameters
    ----------
    scheme:
        The learned hashing scheme (hash table + classifier).
    initial_frequencies:
        Mapping from prefix element keys to their prefix frequencies; used to
        seed the per-bucket aggregates so the estimator already reflects the
        prefix at the start of stream processing.  Pass ``None`` (or an empty
        mapping) to start from zero counters.
    count_stored_ids:
        Whether the stored IDs are charged against the memory footprint
        (one bucket-equivalent each, following Section 7.3).  On by default.
    """

    def __init__(
        self,
        scheme: OptHashScheme,
        initial_frequencies: Optional[Dict[Hashable, float]] = None,
        count_stored_ids: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        self.scheme = scheme
        self.seed = seed
        self._count_stored_ids = count_stored_ids
        self._bucket_totals = np.zeros(scheme.num_buckets)
        self._bucket_counts = np.zeros(scheme.num_buckets)
        if initial_frequencies:
            for key, frequency in initial_frequencies.items():
                bucket = scheme.key_to_bucket.get(key)
                if bucket is None:
                    raise ValueError(
                        f"initial frequency given for key {key!r} that is not in the scheme"
                    )
                self._bucket_totals[bucket] += float(frequency)
                self._bucket_counts[bucket] += 1.0
        else:
            # Even without initial frequencies the per-bucket element counts
            # reflect the scheme so queries average over the right population.
            for bucket in scheme.key_to_bucket.values():
                self._bucket_counts[bucket] += 1.0
        # Post-seed snapshots: merge() folds in only the *ingested* deltas of
        # the other estimator, so shards that each start from the same prefix
        # seeding do not double-count it when collapsed.
        self._initial_totals = self._bucket_totals.copy()
        self._initial_counts = self._bucket_counts.copy()

    # ------------------------------------------------------------------
    # FrequencyEstimator interface
    # ------------------------------------------------------------------
    @property
    def routes_by_features(self) -> bool:
        """Ingestion only consults the exact hash table, never the classifier."""
        return False

    def update(self, element: Element) -> None:
        """Process one arrival: only prefix elements update their bucket."""
        bucket = self.scheme.key_to_bucket.get(element.key)
        if bucket is not None:
            self._bucket_totals[bucket] += 1.0

    def update_batch(self, keys, counts=None) -> None:
        """Vectorized ingestion: bucket lookups then one scatter-add.

        Keys outside the scheme's hash table are ignored, exactly as in the
        scalar path; the surviving per-bucket additions happen in arrival
        order so the float accumulators stay bit-identical.
        """
        key_batch, count_array = as_key_batch(keys, counts)
        table = self.scheme.key_to_bucket
        buckets: list = []
        amounts: list = []
        for key, count in zip(key_batch, count_array):
            bucket = table.get(key)
            if bucket is not None:
                buckets.append(bucket)
                amounts.append(count)
        if buckets:
            np.add.at(
                self._bucket_totals,
                np.asarray(buckets, dtype=np.int64),
                np.asarray(amounts, dtype=np.float64),
            )

    def estimate(self, element: Element) -> float:
        bucket = self.scheme.bucket_of(element)
        count = self._bucket_counts[bucket]
        if count == 0:
            return 0.0
        return float(self._bucket_totals[bucket] / count)

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries: one batched bucket resolution + gather."""
        items = keys if isinstance(keys, np.ndarray) else list(keys)
        if len(items) == 0:
            return np.zeros(0, dtype=np.float64)
        buckets = self.scheme.buckets_batch(items)
        counts = self._bucket_counts[buckets]
        totals = self._bucket_totals[buckets]
        return np.divide(
            totals, counts, out=np.zeros_like(totals), where=counts != 0
        )

    def merge(self, other: "OptHashEstimator") -> "OptHashEstimator":
        """Fold another shard's *ingested* arrivals into this estimator.

        Both estimators must share the learned scheme and have been seeded
        identically (same prefix frequencies); what transfers is the delta
        each bucket accumulated after construction.  Bucket updates are
        integer-valued, so as long as the stream stays below 2^53 arrivals
        per bucket the merged totals are bit-identical to single-estimator
        ingestion of the concatenated streams.
        """
        if not isinstance(other, OptHashEstimator):
            raise IncompatibleSketchError(
                f"cannot merge OptHashEstimator with {type(other).__name__}"
            )
        _check_mergeable_schemes(self, other)
        if not np.array_equal(self._initial_totals, other._initial_totals):
            raise IncompatibleSketchError(
                "initial bucket seedings differ: merged estimators must be "
                "built from the same prefix frequencies"
            )
        self._bucket_totals += other._bucket_totals - other._initial_totals
        # The static estimator never mutates the element counts after
        # seeding, so there is no count delta to transfer.
        return self

    @property
    def size_bytes(self) -> int:
        stored_ids = self.scheme.num_stored_ids if self._count_stored_ids else 0
        return BYTES_PER_BUCKET * (self.scheme.num_buckets + stored_ids)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _describe_params(self) -> dict:
        return {
            "num_buckets": self.scheme.num_buckets,
            "num_stored_ids": self.scheme.num_stored_ids,
            "classifier": (
                type(self.scheme.classifier).__name__
                if self.scheme.classifier is not None
                else None
            ),
            "seed": self.seed,
        }

    @property
    def bucket_totals(self) -> np.ndarray:
        """Aggregate frequency ``φ_j`` per bucket."""
        return self._bucket_totals.copy()

    @property
    def bucket_counts(self) -> np.ndarray:
        """Element count ``c_j`` per bucket."""
        return self._bucket_counts.copy()

    def bucket_average(self, bucket: int) -> float:
        """Current average frequency of a bucket (0 if empty)."""
        count = self._bucket_counts[bucket]
        return float(self._bucket_totals[bucket] / count) if count else 0.0


@register_estimator(
    "adaptive_opt_hash",
    spec_cls=OptHashSpec,
    builder=_build_opt_hash,
    requires_training=True,
)
class AdaptiveOptHashEstimator(FrequencyEstimator):
    """The adaptive (Bloom-filter) opt-hash estimator of Section 5.3.

    Parameters
    ----------
    scheme:
        The learned hashing scheme.
    initial_frequencies:
        Prefix frequencies used to seed the bucket aggregates and to
        initialize the Bloom filter with the prefix elements.
    bloom_bits:
        Size of the Bloom filter in bits.  If omitted it is sized for a 1%
        false-positive rate over ``expected_distinct`` elements.
    expected_distinct:
        Expected number of distinct elements over the stream's lifetime
        (used only to size the default Bloom filter).
    seed:
        Seed for the Bloom filter's hash functions.
    backend:
        Kernel backend for the Bloom filter's batch hot paths
        (see :mod:`repro.kernels`).
    """

    def __init__(
        self,
        scheme: OptHashScheme,
        initial_frequencies: Optional[Dict[Hashable, float]] = None,
        bloom_bits: Optional[int] = None,
        expected_distinct: int = 10_000,
        seed: Optional[int] = None,
        count_stored_ids: bool = False,
        backend: str = "auto",
    ) -> None:
        self.scheme = scheme
        self.seed = seed
        self.backend = backend
        self._count_stored_ids = count_stored_ids
        self._bucket_totals = np.zeros(scheme.num_buckets)
        self._bucket_counts = np.zeros(scheme.num_buckets)
        if bloom_bits is not None:
            self._bloom = BloomFilter(
                num_bits=bloom_bits,
                expected_items=expected_distinct,
                seed=seed,
                backend=backend,
            )
        else:
            self._bloom = BloomFilter.from_false_positive_rate(
                expected_items=expected_distinct,
                false_positive_rate=0.01,
                seed=seed,
                backend=backend,
            )
        if initial_frequencies:
            for key, frequency in initial_frequencies.items():
                bucket = scheme.key_to_bucket.get(key)
                if bucket is None:
                    bucket = scheme.predict_bucket(Element(key=key))
                self._bucket_totals[bucket] += float(frequency)
                self._bucket_counts[bucket] += 1.0
                self._bloom.add(key)
        else:
            for key, bucket in scheme.key_to_bucket.items():
                self._bucket_counts[bucket] += 1.0
                self._bloom.add(key)
        # Post-seed snapshots for delta-based merging (see OptHashEstimator).
        self._initial_totals = self._bucket_totals.copy()
        self._initial_counts = self._bucket_counts.copy()

    @property
    def routes_by_features(self) -> bool:
        """Unseen arrivals route through the feature-based classifier."""
        return self.scheme.classifier is not None

    def update(self, element: Element) -> None:
        """Every arrival updates its bucket; first-time arrivals grow ``c_j``."""
        bucket = self.scheme.bucket_of(element)
        self._bucket_totals[bucket] += 1.0
        if element.key not in self._bloom:
            self._bucket_counts[bucket] += 1.0
            self._bloom.add(element.key)

    def update_batch(self, keys, counts=None) -> None:
        """Vectorized ingestion with sequential first-occurrence accounting.

        Bucket resolution and the φ_j scatter-add are fully vectorized; the
        Bloom-filter pass walks the batch in arrival order (via
        :meth:`BloomFilter.observe_batch`) so within-batch repeats of a key
        count exactly once, as in a scalar replay.
        """
        items = keys if isinstance(keys, np.ndarray) else list(keys)
        key_batch, count_array = as_key_batch(items, counts)
        if len(key_batch) == 0:
            return
        if count_array.min() == 0:
            # Zero-count entries are no-ops in a scalar replay: they must not
            # touch the Bloom filter or the per-bucket element counts.
            nonzero = np.flatnonzero(count_array)
            if nonzero.size == 0:
                return
            items = (
                items[nonzero]
                if isinstance(items, np.ndarray)
                else [items[i] for i in nonzero]
            )
            key_batch = (
                key_batch[nonzero]
                if isinstance(key_batch, np.ndarray)
                else [key_batch[i] for i in nonzero]
            )
            count_array = count_array[nonzero]
        buckets = self.scheme.buckets_batch(items)
        np.add.at(self._bucket_totals, buckets, count_array.astype(np.float64))
        new_flags = self._bloom.observe_batch(key_batch)
        if new_flags.any():
            np.add.at(self._bucket_counts, buckets[new_flags], 1.0)

    def estimate(self, element: Element) -> float:
        if element.key not in self._bloom:
            # The paper multiplies the bucket average by BF(u): elements never
            # marked as seen are estimated as zero.
            return 0.0
        bucket = self.scheme.bucket_of(element)
        count = self._bucket_counts[bucket]
        if count == 0:
            return 0.0
        return float(self._bucket_totals[bucket] / count)

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries gated by batched Bloom membership."""
        items = keys if isinstance(keys, np.ndarray) else list(keys)
        key_batch, _ = as_key_batch(items)
        n = len(key_batch)
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        contained = self._bloom.contains_batch(key_batch)
        estimates = np.zeros(n, dtype=np.float64)
        if contained.any():
            indices = np.flatnonzero(contained)
            subset = (
                items[indices]
                if isinstance(items, np.ndarray)
                else [items[i] for i in indices]
            )
            buckets = self.scheme.buckets_batch(subset)
            counts = self._bucket_counts[buckets]
            totals = self._bucket_totals[buckets]
            estimates[indices] = np.divide(
                totals, counts, out=np.zeros_like(totals), where=counts != 0
            )
        return estimates

    def merge(self, other: "AdaptiveOptHashEstimator") -> "AdaptiveOptHashEstimator":
        """Fold another shard's ingested arrivals and Bloom state into this one.

        Totals and first-occurrence element counts transfer as post-seed
        deltas; the Bloom filters (built from the same seed, holding the same
        prefix) union bitwise.  With key-partitioned sharding every key's
        arrivals hit exactly one shard, so its first occurrence is counted
        once and the merged state matches serial ingestion exactly.  Under
        round-robin sharding a key's first arrival in *each* shard bumps that
        shard's ``c_j``, so merged element counts can exceed the serial ones
        — use key partitioning when exact adaptive semantics matter.
        """
        if not isinstance(other, AdaptiveOptHashEstimator):
            raise IncompatibleSketchError(
                f"cannot merge AdaptiveOptHashEstimator with {type(other).__name__}"
            )
        _check_mergeable_schemes(self, other)
        if not np.array_equal(self._initial_totals, other._initial_totals):
            raise IncompatibleSketchError(
                "initial bucket seedings differ: merged estimators must be "
                "built from the same prefix frequencies"
            )
        self._bloom.merge(other._bloom)
        self._bucket_totals += other._bucket_totals - other._initial_totals
        self._bucket_counts += other._bucket_counts - other._initial_counts
        return self

    @property
    def size_bytes(self) -> int:
        stored_ids = self.scheme.num_stored_ids if self._count_stored_ids else 0
        # Two counters (φ_j and c_j) per bucket, plus the Bloom filter bits.
        return (
            BYTES_PER_BUCKET * (2 * self.scheme.num_buckets + stored_ids)
            + self._bloom.size_bytes
        )

    def _describe_params(self) -> dict:
        params = {
            "num_buckets": self.scheme.num_buckets,
            "num_stored_ids": self.scheme.num_stored_ids,
            "classifier": (
                type(self.scheme.classifier).__name__
                if self.scheme.classifier is not None
                else None
            ),
            "bloom_bits": self._bloom.num_bits,
            "seed": self.seed,
        }
        if self.backend != "auto":
            params["backend"] = self.backend
        return params

    @property
    def kernel_backend(self) -> str:
        """The kernel backend executing the Bloom filter's hot paths."""
        return self._bloom.kernel_backend

    @property
    def bloom_filter(self) -> BloomFilter:
        return self._bloom

    @property
    def bucket_totals(self) -> np.ndarray:
        return self._bucket_totals.copy()

    @property
    def bucket_counts(self) -> np.ndarray:
        return self._bucket_counts.copy()
