"""Persistent per-shard worker processes for the shared-memory transport.

The serialization transport (``repro.core.sharding``) pays a round trip per
batch: the worker rebuilds a blank shard, ingests, serializes the *entire*
accumulated table back, and the parent deserializes and merges it.  The
transport cost scales with the table size, not the batch size — it is the
hot path once the hashing kernels are vectorized.

The shm transport replaces that with ONE long-lived worker per shard:

* at spawn, the worker builds the shard estimator from its declarative spec
  (identical hashes — the spec carries an explicit seed) and *adopts* the
  parent's shared-memory counter table (:meth:`StorageBacked.adopt_storage`);
* each task is then just ``(keys, counts)`` — the worker scatters directly
  into shared memory and nothing returns.  The return leg is zero-copy by
  construction, and the parent's resident shard objects read the same
  physical pages, so queries observe worker progress live.

Backpressure is the task queue's ``maxsize``; draining is ack-counting (a
shared counter per worker, with a condition variable the worker notifies on
every ack, so the parent sleeps between acks instead of polling).  Failures
raise a per-worker event *and* enqueue a message, so the parent fails fast
without trusting ``Queue.empty()`` (documented as unreliable).  Workers are
daemons: an abandoned pool cannot outlive the parent.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any, Dict, List, Sequence

__all__ = ["ShardWorkerPool", "WorkerDeadError", "WORKER_CHUNK_SIZE"]

#: Chunk size of the in-worker ingestion loop.  Callers ship *large*
#: sub-batches (few tasks amortize the submit/pickle overhead), but
#: vectorized ingestion is fastest when its scatter/gather temporaries stay
#: cache-resident, so the worker re-chunks locally — same sweet spot as
#: ``repro.core.pipeline.DEFAULT_REPLAY_BATCH_SIZE``.
WORKER_CHUNK_SIZE = 65536

#: Upper bound of one condition wait in the drain loops.  Not a poll
#: interval — the worker's ack notification wakes the parent immediately;
#: this only bounds how long a *dead* worker can go unnoticed.
_LIVENESS_CHECK_SECONDS = 0.1

#: How long ``_raise_errors`` waits for a failure *message* once a failure
#: *event* is already set (the event and the queue entry are raised by the
#: worker back to back, but the queue feeder thread may lag the event).
_ERROR_MESSAGE_GRACE_SECONDS = 1.0


from repro.errors import WorkerDeadError as _WorkerDeadErrorBase


class WorkerDeadError(_WorkerDeadErrorBase):
    """One specific shard worker is dead or failed.

    Carries the shard index so a supervised caller can mark *that* shard
    down and keep the survivors serving, instead of treating any worker
    trouble as a pool-wide failure.
    """

    def __init__(self, shard_index: int, message: str) -> None:
        super().__init__(message)
        self.shard_index = shard_index


def _worker_main(
    spec_dict,
    manifest,
    tasks,
    acked,
    ack_cond,
    ready,
    failed,
    errors,
    scatter_seconds,
    shard_index=None,
) -> None:
    """Worker process body: build once, adopt shared storage, ingest forever.

    Every dequeued task is acknowledged (even after an error) so the
    parent's drain accounting never hangs; failures set the shared
    ``failed`` event (checked synchronously by ``submit``/``join``) and
    travel as messages through the ``errors`` queue.  Per-task scatter time
    accumulates into the shared ``scatter_seconds`` (written under the ack
    condition's lock, alongside the ack it accounts for) so the parent can
    report where ingestion wall-clock actually goes.
    """
    estimator = None
    label = "shard worker" if shard_index is None else f"shard worker {shard_index}"
    try:
        from repro.api.registry import build
        from repro.resilience import failpoints

        # Chaos tests arm injection sites in workers through the
        # environment (works under every multiprocessing start method).
        failpoints.arm_from_env()

        blank = dict(spec_dict)
        # The blank twin needs no backend of its own — its array is replaced
        # by the attached view immediately (building it shm-backed would
        # leak one segment per worker).
        blank.pop("storage", None)
        blank.pop("storage_path", None)
        estimator = build(blank)
        estimator.adopt_storage(manifest)
    except BaseException as error:  # surfaced parent-side
        errors.put(f"{label} failed to start: {error!r}")
        failed.set()
        estimator = None
    finally:
        ready.set()
    from repro.resilience import failpoints

    while True:
        job = tasks.get()
        elapsed = 0.0
        try:
            if job is None:
                break
            if estimator is None:
                continue  # init failed; keep acking so the parent can drain
            failpoints.fire("worker.ingest")
            keys, counts = job
            scatter_start = time.perf_counter()
            for start in range(0, len(keys), WORKER_CHUNK_SIZE):
                estimator.update_batch(
                    keys[start : start + WORKER_CHUNK_SIZE],
                    counts[start : start + WORKER_CHUNK_SIZE],
                )
            elapsed = time.perf_counter() - scatter_start
        except BaseException as error:
            errors.put(f"{label} batch failed: {error!r}")
            failed.set()
        finally:
            with ack_cond:
                acked.value += 1
                scatter_seconds.value += elapsed
                ack_cond.notify_all()
    if estimator is not None:
        try:
            # Shutdown path: release the attached table without copying it
            # into a dense array this process is about to discard.
            estimator.close(detach=False)
        except TypeError:
            estimator.close()
        except Exception:
            pass


class _ShardWorker:
    __slots__ = (
        "process",
        "tasks",
        "acked",
        "ack_cond",
        "ready",
        "failed",
        "submitted",
        "scatter_seconds",
    )

    def __init__(
        self, process, tasks, acked, ack_cond, ready, failed, scatter_seconds
    ) -> None:
        self.process = process
        self.tasks = tasks
        self.acked = acked
        self.ack_cond = ack_cond
        self.ready = ready
        self.failed = failed
        self.submitted = 0
        self.scatter_seconds = scatter_seconds

    def drained(self) -> bool:
        return self.acked.value >= self.submitted


class ShardWorkerPool:
    """One persistent daemon process per shard, fed through bounded queues."""

    def __init__(
        self,
        spec_dict: Dict[str, Any],
        manifests: Sequence[Dict[str, Any]],
        max_pending: int = 4,
        supervised: bool = False,
    ) -> None:
        ctx = multiprocessing.get_context()
        self._ctx = ctx
        self._spec_dict = spec_dict
        self._max_pending = max_pending
        self._errors = ctx.Queue()
        self._workers: List[_ShardWorker] = []
        self._closed = False
        self._obs = None
        self._m_submitted = None
        self._m_acked = None
        self._m_scatter = None
        self._m_queue_wait = None
        self._m_deaths = None
        self._m_restarts = None
        #: Supervised pools localize failure: one dead worker raises
        #: :class:`WorkerDeadError` for *its* shard only, and the pool keeps
        #: accepting batches for the survivors while a supervisor revives
        #: it.  Unsupervised pools keep the original park-on-first-death
        #: fail-fast behavior.
        self.supervised = bool(supervised)
        self.restarts = 0
        for shard_index, manifest in enumerate(manifests):
            self._workers.append(self._spawn(manifest, shard_index))

    def _spawn(self, manifest: Dict[str, Any], shard_index: int) -> _ShardWorker:
        ctx = self._ctx
        tasks = ctx.Queue(maxsize=max(1, self._max_pending))
        # The ack counter is guarded by the condition's own lock (the
        # worker increments and notifies under it), so the Value itself
        # carries no lock of its own; ditto the scatter-time accumulator.
        ack_cond = ctx.Condition()
        acked = ctx.Value("q", 0, lock=False)
        scatter_seconds = ctx.Value("d", 0.0, lock=False)
        ready = ctx.Event()
        failed = ctx.Event()
        process = ctx.Process(
            target=_worker_main,
            args=(
                self._spec_dict,
                manifest,
                tasks,
                acked,
                ack_cond,
                ready,
                failed,
                self._errors,
                scatter_seconds,
                shard_index,
            ),
            daemon=True,
        )
        process.start()
        return _ShardWorker(
            process, tasks, acked, ack_cond, ready, failed, scatter_seconds
        )

    def revive(
        self, shard_index: int, manifest: Dict[str, Any], timeout: float = 30.0
    ) -> None:
        """Replace a dead worker with a fresh process attached to ``manifest``.

        The replacement starts from a *blank* shard adopted onto the given
        (parent-owned) storage — restoring counter state into that storage
        first is the supervisor's job, not the pool's.  Stale state of the
        old worker (queued tasks, failure event, unread error messages) is
        discarded; ack/submit accounting restarts from zero.
        """
        if self._closed:
            raise RuntimeError("shard worker pool is closed")
        old = self._workers[shard_index]
        if old.process.is_alive():
            old.process.terminate()
            old.process.join(timeout=5.0)
        try:
            if not old.drained():
                old.tasks.cancel_join_thread()
            old.tasks.close()
        except Exception:
            pass
        self.drain_errors()
        worker = self._spawn(manifest, shard_index)
        self._workers[shard_index] = worker
        if not worker.ready.wait(timeout):
            raise WorkerDeadError(
                shard_index,
                f"shard worker {shard_index} failed to start within the "
                f"revive deadline ({timeout:g}s)",
            )
        if worker.failed.is_set():
            messages = self.drain_errors()
            raise WorkerDeadError(
                shard_index,
                "; ".join(messages)
                or f"shard worker {shard_index} failed to start",
            )
        self.restarts += 1

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def failed(self) -> bool:
        """True once any worker has raised (init or batch failure)."""
        return any(worker.failed.is_set() for worker in self._workers)

    def instrument(self, metrics) -> "ShardWorkerPool":
        """Register pool metrics on a :class:`~repro.obs.MetricsRegistry`.

        Per-batch cost when instrumented is one ``perf_counter`` pair and a
        histogram observe in :meth:`submit`; the per-shard submitted/acked/
        scatter counters mirror the shared state lazily, in
        :meth:`sync_metrics`, so the workers' hot loop is untouched.
        """
        self._obs = metrics
        self._m_submitted = metrics.counter(
            "repro_pool_submitted_batches_total",
            "Batches submitted to each shard worker.",
            labels=("shard",),
        )
        self._m_acked = metrics.counter(
            "repro_pool_acked_batches_total",
            "Batches each shard worker has acknowledged (ingested).",
            labels=("shard",),
        )
        self._m_scatter = metrics.counter(
            "repro_pool_scatter_seconds_total",
            "In-worker scatter (update_batch) wall-clock per shard.",
            labels=("shard",),
        )
        self._m_queue_wait = metrics.histogram(
            "repro_pool_queue_wait_seconds",
            "Time submit() spent enqueueing one batch (blocks when the "
            "shard's bounded queue is full).",
        )
        self._m_deaths = metrics.counter(
            "repro_pool_worker_deaths_total",
            "Shard worker processes observed dead by the parent.",
        )
        self._m_restarts = metrics.counter(
            "repro_pool_worker_restarts_total",
            "Shard worker processes revived by a supervisor.",
        )
        return self

    def sync_metrics(self) -> None:
        """Mirror the shared per-worker state into the registry (if any)."""
        if self._obs is None:
            return
        for index, worker in enumerate(self._workers):
            shard = str(index)
            self._m_submitted.labels(shard=shard).inc_to(worker.submitted)
            self._m_acked.labels(shard=shard).inc_to(worker.acked.value)
            self._m_scatter.labels(shard=shard).inc_to(worker.scatter_seconds.value)
        self._m_deaths.inc_to(
            sum(1 for worker in self._workers if not worker.process.is_alive())
        )
        self._m_restarts.inc_to(self.restarts)

    def stats(self) -> Dict[str, Any]:
        """Point-in-time per-worker accounting (no registry required)."""
        return {
            "supervised": self.supervised,
            "restarts": self.restarts,
            "workers": [
                {
                    "shard": index,
                    "alive": worker.process.is_alive(),
                    "failed": worker.failed.is_set(),
                    "submitted": worker.submitted,
                    "acked": worker.acked.value,
                    "scatter_seconds": round(worker.scatter_seconds.value, 6),
                }
                for index, worker in enumerate(self._workers)
            ]
        }

    def wait_ready(self, timeout: float = 60.0) -> "ShardWorkerPool":
        """Block until every worker has built its shard and attached.

        ``timeout`` is ONE deadline shared by the whole pool, not a
        per-worker allowance — a 16-shard pool cannot stretch a 60 s
        timeout into 16 minutes.
        """
        deadline = time.monotonic() + timeout
        for index, worker in enumerate(self._workers):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not worker.ready.wait(remaining):
                raise RuntimeError(
                    f"shard worker {index} failed to start within the pool's "
                    f"{timeout:g}s deadline"
                )
        # A failure event set during init means an error message is on its
        # way even if the queue's feeder thread has not delivered it yet.
        self._raise_errors(expect_failure=self.failed)
        return self

    def submit(self, shard_index: int, keys, counts) -> None:
        """Queue one (keys, counts) batch for a shard.

        Blocks when the shard's queue is full (bounded backlog); a worker
        that died or failed mid-stream raises instead of deadlocking the
        put.  Failure detection reads the workers' shared ``failed``
        events — synchronous and reliable, unlike ``Queue.empty()`` on the
        error queue (documented as approximate), which previously let a
        worker init failure go unnoticed for many batches.
        """
        if self._closed:
            raise RuntimeError("shard worker pool is closed")
        if not self.supervised and self.failed:
            # Fail fast: a worker that errored (e.g. died during init) keeps
            # acking-and-discarding; without this check a long ingestion
            # would silently drop every batch for that shard until the next
            # drain.  Supervised pools localize instead: the per-worker
            # checks below raise WorkerDeadError for the affected shard
            # only, so batches for healthy shards keep flowing while the
            # supervisor rebuilds the dead one.
            self._raise_errors(expect_failure=True)
        worker = self._workers[shard_index]
        wait_start = time.perf_counter() if self._obs is not None else 0.0
        while True:
            if not worker.process.is_alive():
                if self.supervised:
                    raise WorkerDeadError(
                        shard_index, f"shard worker {shard_index} died"
                    )
                self._raise_errors()
                raise WorkerDeadError(shard_index, f"shard worker {shard_index} died")
            if worker.failed.is_set():
                if self.supervised:
                    raise WorkerDeadError(
                        shard_index, f"shard worker {shard_index} failed"
                    )
                self._raise_errors(expect_failure=True)
            try:
                worker.tasks.put((keys, counts), timeout=0.05)
                break
            except queue_module.Full:
                continue
        worker.submitted += 1
        if self._obs is not None:
            self._m_queue_wait.observe(time.perf_counter() - wait_start)

    def join(self, exclude=frozenset()) -> None:
        """Block until every submitted batch has been ingested.

        Event-driven: each worker notifies its ack condition per batch, so
        the parent sleeps between acks instead of burning a core polling —
        the waits below only wake early to notice a dead worker.

        ``exclude`` names shard indices to skip — a supervised caller
        drains the *survivors* while a dead shard awaits rebuild.  With a
        non-empty exclude set, stale error messages from the excluded
        (dead) workers are discarded instead of raised.
        """
        for index, worker in enumerate(self._workers):
            if index in exclude:
                continue
            with worker.ack_cond:
                while not worker.drained():
                    if worker.failed.is_set():
                        break
                    if not worker.process.is_alive():
                        if not exclude:
                            self._raise_errors()
                        raise WorkerDeadError(
                            index,
                            f"shard worker {index} died with batches outstanding",
                        )
                    worker.ack_cond.wait(_LIVENESS_CHECK_SECONDS)
            if worker.failed.is_set():
                if exclude:
                    raise WorkerDeadError(index, f"shard worker {index} failed")
                self._raise_errors(expect_failure=True)
        if exclude:
            self.drain_errors()
        else:
            self._raise_errors()

    def drain_errors(self) -> List[str]:
        """Collect (without raising) any queued worker error messages.

        The supervised path uses this after a worker death is already
        attributed: the messages go to logs/metrics, and must not poison
        the next healthy operation the way :meth:`_raise_errors` would.
        """
        messages: List[str] = []
        while True:
            try:
                messages.append(self._errors.get_nowait())
            except queue_module.Empty:
                return messages

    def _raise_errors(self, expect_failure: bool = False) -> None:
        """Drain the error queue and raise its messages, if any.

        With ``expect_failure`` a failure event is known to be set, so an
        empty queue is a feeder-thread race, not a clean bill of health —
        wait briefly for the message before raising a generic error.
        """
        messages = []
        while True:
            try:
                messages.append(self._errors.get_nowait())
            except queue_module.Empty:
                break
        if not messages and expect_failure:
            try:
                messages.append(self._errors.get(timeout=_ERROR_MESSAGE_GRACE_SECONDS))
            except queue_module.Empty:
                messages.append("shard worker failed (no error message received)")
        if messages:
            raise RuntimeError("; ".join(messages))

    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers (idempotent).

        Queued batches finish first: each worker is drained by ack-counting
        (bounded by one pool-wide ``timeout`` deadline) before its shutdown
        sentinel is enqueued, so a full task queue no longer causes queued
        batches to be silently dropped.  Only workers still undrained at
        the deadline — or dead/failed ones — are terminated with work
        outstanding.  Never raises: close runs on error paths too; use
        :meth:`join` first for a drain that surfaces failures.
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            with worker.ack_cond:
                while (
                    not worker.drained()
                    and worker.process.is_alive()
                    and not worker.failed.is_set()
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    worker.ack_cond.wait(min(_LIVENESS_CHECK_SECONDS, remaining))
        for worker in self._workers:
            # A drained worker's queue has room for the sentinel by
            # construction; the timeout only covers undrained stragglers.
            try:
                worker.tasks.put(None, timeout=max(0.1, deadline - time.monotonic()))
            except queue_module.Full:
                pass  # terminate below
        for worker in self._workers:
            worker.process.join(timeout=max(1.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                if not worker.process.is_alive() and not worker.drained():
                    # A dead worker can leave the queue's feeder thread
                    # blocked on a pipe nobody will ever read; joining that
                    # thread at interpreter exit would hang the parent.
                    # The undelivered batches are already lost with the
                    # worker — don't let them take the process down too.
                    worker.tasks.cancel_join_thread()
                worker.tasks.close()
            except Exception:
                pass
