"""Persistent per-shard worker processes for the shared-memory transport.

The serialization transport (``repro.core.sharding``) pays a round trip per
batch: the worker rebuilds a blank shard, ingests, serializes the *entire*
accumulated table back, and the parent deserializes and merges it.  The
transport cost scales with the table size, not the batch size — it is the
hot path once the hashing kernels are vectorized.

The shm transport replaces that with ONE long-lived worker per shard:

* at spawn, the worker builds the shard estimator from its declarative spec
  (identical hashes — the spec carries an explicit seed) and *adopts* the
  parent's shared-memory counter table (:meth:`StorageBacked.adopt_storage`);
* each task is then just ``(keys, counts)`` — the worker scatters directly
  into shared memory and nothing returns.  The return leg is zero-copy by
  construction, and the parent's resident shard objects read the same
  physical pages, so queries observe worker progress live.

Backpressure is the task queue's ``maxsize``; draining is ack-counting (a
shared counter per worker) so a dead worker surfaces as an error instead of
a deadlock.  Workers are daemons: an abandoned pool cannot outlive the
parent.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any, Dict, List, Sequence

__all__ = ["ShardWorkerPool", "WORKER_CHUNK_SIZE"]

#: Chunk size of the in-worker ingestion loop.  Callers ship *large*
#: sub-batches (few tasks amortize the submit/pickle overhead), but
#: vectorized ingestion is fastest when its scatter/gather temporaries stay
#: cache-resident, so the worker re-chunks locally — same sweet spot as
#: ``repro.core.pipeline.DEFAULT_REPLAY_BATCH_SIZE``.
WORKER_CHUNK_SIZE = 65536

#: Poll interval of the ack-counting drain loop.
_JOIN_POLL_SECONDS = 0.001


def _worker_main(spec_dict, manifest, tasks, acked, ready, errors) -> None:
    """Worker process body: build once, adopt shared storage, ingest forever.

    Every dequeued task is acknowledged (even after an error) so the
    parent's drain accounting never hangs; failures travel through the
    ``errors`` queue and are raised parent-side on the next drain.
    """
    estimator = None
    try:
        from repro.api.registry import build

        blank = dict(spec_dict)
        # The blank twin needs no backend of its own — its array is replaced
        # by the attached view immediately (building it shm-backed would
        # leak one segment per worker).
        blank.pop("storage", None)
        blank.pop("storage_path", None)
        estimator = build(blank)
        estimator.adopt_storage(manifest)
    except BaseException as error:  # surfaced parent-side
        errors.put(f"shard worker failed to start: {error!r}")
        estimator = None
    finally:
        ready.set()
    while True:
        job = tasks.get()
        try:
            if job is None:
                break
            if estimator is None:
                continue  # init failed; keep acking so the parent can drain
            keys, counts = job
            for start in range(0, len(keys), WORKER_CHUNK_SIZE):
                estimator.update_batch(
                    keys[start : start + WORKER_CHUNK_SIZE],
                    counts[start : start + WORKER_CHUNK_SIZE],
                )
        except BaseException as error:
            errors.put(f"shard worker batch failed: {error!r}")
        finally:
            with acked.get_lock():
                acked.value += 1
    if estimator is not None:
        try:
            # Shutdown path: release the attached table without copying it
            # into a dense array this process is about to discard.
            estimator.close(detach=False)
        except TypeError:
            estimator.close()
        except Exception:
            pass


class _ShardWorker:
    __slots__ = ("process", "tasks", "acked", "ready", "submitted")

    def __init__(self, process, tasks, acked, ready) -> None:
        self.process = process
        self.tasks = tasks
        self.acked = acked
        self.ready = ready
        self.submitted = 0


class ShardWorkerPool:
    """One persistent daemon process per shard, fed through bounded queues."""

    def __init__(
        self,
        spec_dict: Dict[str, Any],
        manifests: Sequence[Dict[str, Any]],
        max_pending: int = 4,
    ) -> None:
        ctx = multiprocessing.get_context()
        self._errors = ctx.Queue()
        self._workers: List[_ShardWorker] = []
        self._closed = False
        for manifest in manifests:
            tasks = ctx.Queue(maxsize=max(1, max_pending))
            acked = ctx.Value("q", 0)
            ready = ctx.Event()
            process = ctx.Process(
                target=_worker_main,
                args=(spec_dict, manifest, tasks, acked, ready, self._errors),
                daemon=True,
            )
            process.start()
            self._workers.append(_ShardWorker(process, tasks, acked, ready))

    def __len__(self) -> int:
        return len(self._workers)

    def wait_ready(self, timeout: float = 60.0) -> "ShardWorkerPool":
        """Block until every worker has built its shard and attached."""
        for index, worker in enumerate(self._workers):
            if not worker.ready.wait(timeout):
                raise RuntimeError(f"shard worker {index} failed to start in time")
        self._raise_errors()
        return self

    def submit(self, shard_index: int, keys, counts) -> None:
        """Queue one (keys, counts) batch for a shard.

        Blocks when the shard's queue is full (bounded backlog); a worker
        that died mid-stream raises instead of deadlocking the put.
        """
        if self._closed:
            raise RuntimeError("shard worker pool is closed")
        if not self._errors.empty():
            # Fail fast: a worker that errored (e.g. died during init) keeps
            # acking-and-discarding; without this check a long ingestion
            # would silently drop every batch for that shard until the next
            # drain.
            self._raise_errors()
        worker = self._workers[shard_index]
        while True:
            if not worker.process.is_alive():
                self._raise_errors()
                raise RuntimeError(f"shard worker {shard_index} died")
            try:
                worker.tasks.put((keys, counts), timeout=0.05)
                break
            except queue_module.Full:
                continue
        worker.submitted += 1

    def join(self) -> None:
        """Block until every submitted batch has been ingested."""
        for index, worker in enumerate(self._workers):
            while worker.acked.value < worker.submitted:
                if not worker.process.is_alive():
                    self._raise_errors()
                    raise RuntimeError(
                        f"shard worker {index} died with batches outstanding"
                    )
                time.sleep(_JOIN_POLL_SECONDS)
        self._raise_errors()

    def _raise_errors(self) -> None:
        messages = []
        while True:
            try:
                messages.append(self._errors.get_nowait())
            except queue_module.Empty:
                break
        if messages:
            raise RuntimeError("; ".join(messages))

    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers (idempotent).  Queued batches finish first."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.tasks.put(None, timeout=1.0)
            except queue_module.Full:
                pass  # terminate below
        for worker in self._workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.tasks.close()
            except Exception:
                pass
