"""End-to-end training pipeline for the opt-hash estimator (paper Section 3).

:func:`train_opt_hash` takes an observed stream prefix and produces a ready
streaming estimator by:

1. computing the empirical frequencies of the distinct prefix elements;
2. optionally sampling a subset of them (with probability proportional to
   frequency, as the real-data experiments in Section 7.3 do when storing
   every prefix ID would already exceed the memory budget);
3. learning the bucket assignment with the configured solver (bcd / dp / milp);
4. training the configured classifier on ``(features, bucket)`` pairs so
   unseen elements can be hashed;
5. seeding the per-bucket aggregates with the prefix frequencies.

The helper :func:`split_bucket_budget` implements the paper's split of a
total bucket budget into "stored IDs" and "buckets" via the ratio ``c``.
:func:`replay` is the chunked batch-ingestion loop every driver shares: it
feeds a stream (or raw key array) through ``update_batch`` in fixed-size
chunks so streaming 10^6+ arrivals costs a handful of NumPy calls per chunk
instead of one Python call per element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import AdaptiveOptHashEstimator, OptHashEstimator
from repro.core.scheme import OptHashScheme, default_featurizer
from repro.core.sharding import ShardedEstimator
from repro.ml import make_classifier
from repro.ml.base import Classifier
from repro.ml.model_selection import grid_search
from repro.optimize.solvers import SolverResult, learn_hashing_scheme
from repro.streams.stream import Element, Stream, StreamPrefix

__all__ = [
    "OptHashConfig",
    "TrainingResult",
    "train_opt_hash",
    "sample_prefix_elements",
    "split_bucket_budget",
    "replay",
    "replay_sharded",
    "DEFAULT_REPLAY_BATCH_SIZE",
]

#: Chunk size of the batch replay loop.  Large enough that per-chunk Python
#: overhead is negligible, small enough to keep the working set in cache.
DEFAULT_REPLAY_BATCH_SIZE = 65536


def replay(
    estimator,
    stream,
    batch_size: int = DEFAULT_REPLAY_BATCH_SIZE,
    metrics=None,
) -> int:
    """Stream all arrivals through ``estimator.update_batch`` in chunks.

    ``stream`` may be a :class:`~repro.streams.stream.Stream` (its cached
    key array is sliced into chunks) or any array/sequence of raw keys or
    elements.  Returns the number of arrivals processed.  When the
    estimator declares ``routes_by_features`` (the adaptive opt-hash
    classifier, a feature-based heavy-hitter oracle) and the stream's
    elements carry features, the chunks keep the full elements; otherwise
    the raw key array is the fast path.

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) opt-in records
    ``repro_replay_chunk_seconds`` / ``repro_replay_keys_total`` per chunk;
    without it the loop carries no instrumentation overhead at all.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    chunk_seconds = keys_total = None
    if metrics is not None:
        chunk_seconds = metrics.histogram(
            "repro_replay_chunk_seconds", "update_batch latency per replay chunk."
        )
        keys_total = metrics.counter(
            "repro_replay_keys_total", "Arrivals replayed through update_batch."
        )
    if isinstance(stream, Stream):
        # Feature-routing estimators always get whole elements — exactly
        # what a scalar replay would feed them, whether or not individual
        # arrivals happen to carry features.
        needs_features = getattr(estimator, "routes_by_features", False)
        if not needs_features:
            total = 0
            for chunk in stream.iter_key_batches(batch_size):
                if chunk_seconds is not None:
                    with chunk_seconds.time():
                        estimator.update_batch(chunk)
                    keys_total.inc(len(chunk))
                else:
                    estimator.update_batch(chunk)
                total += len(chunk)
            return total
        stream = stream.arrivals
    keys = stream if isinstance(stream, np.ndarray) else list(stream)
    for start in range(0, len(keys), batch_size):
        chunk = keys[start : start + batch_size]
        if chunk_seconds is not None:
            with chunk_seconds.time():
                estimator.update_batch(chunk)
            keys_total.inc(len(chunk))
        else:
            estimator.update_batch(chunk)
    return len(keys)


def replay_sharded(
    factory,
    stream,
    num_shards: int = 4,
    mode: str = "key-partition",
    executor: str = "serial",
    transport: str = "serialization",
    batch_size: int = DEFAULT_REPLAY_BATCH_SIZE,
    collapse: bool = True,
):
    """Replay a stream through ``num_shards`` estimator shards.

    ``factory`` is what :class:`ShardedEstimator` accepts: an
    :class:`~repro.api.specs.EstimatorSpec` (or JSON-safe spec dict, e.g.
    ``{"kind": "count_min", "total_buckets": 8192, "depth": 2, "seed": 1}``),
    or a zero-argument callable producing one (seeded, hence mergeable)
    estimator per call — e.g. a closure re-wrapping a trained
    :class:`OptHashScheme`.  With
    ``collapse=True`` (default) the shards are merged into one ordinary
    estimator, the pool is shut down, and the merged estimator is returned —
    a drop-in replacement for :func:`replay` into a single instance.  With
    ``collapse=False`` the live :class:`ShardedEstimator` is returned (caller
    owns ``close()``), which keeps answering queries while further batches
    stream in.
    """
    sharded = ShardedEstimator(
        factory, num_shards, mode=mode, executor=executor, transport=transport
    )
    try:
        replay(sharded, stream, batch_size=batch_size)
    except BaseException:
        sharded.close()
        raise
    if collapse:
        merged = sharded.collapse()
        sharded.close()
        return merged
    return sharded


def split_bucket_budget(total_buckets: int, ratio: float) -> Tuple[int, int]:
    """Split a total budget into ``(num_stored_ids, num_buckets)``.

    Following Section 7.3: for user-specified total budget ``b_total`` and
    ratio ``c = b / n`` between buckets and stored IDs,
    ``n = b_total / (1 + c)`` and ``b = b_total − n``.
    """
    if total_buckets < 2:
        raise ValueError("total_buckets must be at least 2")
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    num_stored = int(round(total_buckets / (1.0 + ratio)))
    num_stored = min(max(num_stored, 1), total_buckets - 1)
    num_buckets = total_buckets - num_stored
    return num_stored, num_buckets


def sample_prefix_elements(
    frequencies: np.ndarray,
    max_elements: int,
    proportional_to_frequency: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Indices of a sample of prefix elements to keep in the hash table.

    When the prefix contains more distinct elements than the memory budget
    allows, a subset is sampled — by default with probability proportional to
    the observed frequencies, so the high-impact elements are retained.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    num_elements = len(frequencies)
    if max_elements >= num_elements:
        return np.arange(num_elements)
    if max_elements <= 0:
        raise ValueError("max_elements must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    if proportional_to_frequency and frequencies.sum() > 0:
        probabilities = frequencies / frequencies.sum()
        return np.sort(
            rng.choice(num_elements, size=max_elements, replace=False, p=probabilities)
        )
    return np.sort(rng.choice(num_elements, size=max_elements, replace=False))


@dataclass
class OptHashConfig:
    """Configuration of the opt-hash training pipeline.

    Attributes
    ----------
    num_buckets:
        Number of buckets ``b`` of the learned scheme.
    lam:
        Trade-off λ between estimation and similarity errors.
    solver:
        ``"bcd"``, ``"dp"`` or ``"milp"``.
    solver_options:
        Extra keyword arguments for the solver.
    classifier:
        Name of the classifier for unseen elements (``"cart"``, ``"logreg"``,
        ``"rf"``) or ``None`` to disable it (unseen elements then fall back
        to bucket 0).
    classifier_options:
        Keyword arguments for the classifier constructor.
    tune_classifier / tuning_grid / tuning_folds:
        Optional k-fold cross-validated grid search over classifier
        hyperparameters (10 folds in the paper).
    max_stored_elements:
        Cap on the number of prefix elements whose IDs are stored (``n``);
        ``None`` stores all of them.
    sample_proportional_to_frequency:
        Sampling rule used when the cap binds.
    adaptive:
        If True, build the Bloom-filter extension instead of the static
        estimator.
    bloom_bits / expected_distinct:
        Bloom filter sizing for the adaptive estimator.
    seed:
        Seed for all stochastic steps.
    backend:
        Kernel backend for the adaptive estimator's Bloom filter hot paths
        (see :mod:`repro.kernels`); the static estimator has no array hot
        path and ignores it.
    """

    num_buckets: int = 10
    lam: float = 1.0
    solver: str = "bcd"
    solver_options: Dict = field(default_factory=dict)
    classifier: Optional[str] = "cart"
    classifier_options: Dict = field(default_factory=dict)
    tune_classifier: bool = False
    tuning_grid: Optional[Dict[str, Sequence]] = None
    tuning_folds: int = 10
    max_stored_elements: Optional[int] = None
    sample_proportional_to_frequency: bool = True
    adaptive: bool = False
    bloom_bits: Optional[int] = None
    expected_distinct: int = 10_000
    seed: Optional[int] = None
    backend: str = "auto"


@dataclass
class TrainingResult:
    """Everything the learning phase produced.

    ``estimator`` is what stream processing uses; the other fields expose the
    intermediate artifacts for analysis (e.g. the experiments that report the
    optimizer's objective value directly).
    """

    estimator: OptHashEstimator
    scheme: OptHashScheme
    solver_result: SolverResult
    classifier: Optional[Classifier]
    stored_keys: list
    stored_frequencies: np.ndarray
    stored_features: np.ndarray
    classifier_cv_score: Optional[float] = None


def _default_tuning_grid(classifier_name: str) -> Dict[str, Sequence]:
    """The hyperparameter grids of Section 6.2."""
    if classifier_name == "logreg":
        return {"ridge": [1e-4, 1e-3, 1e-2, 1e-1]}
    if classifier_name == "cart":
        return {"min_impurity_decrease": [0.0, 1e-3, 1e-2], "max_depth": [5, 10, None]}
    if classifier_name == "rf":
        return {"max_features": ["sqrt", 0.5, None], "max_depth": [5, 10, None]}
    return {}


def _fit_classifier(
    config: OptHashConfig,
    features: np.ndarray,
    labels: np.ndarray,
) -> Tuple[Optional[Classifier], Optional[float]]:
    """Fit (and optionally tune) the unseen-element classifier."""
    if config.classifier is None or features.shape[1] == 0:
        return None, None
    if len(np.unique(labels)) < 2:
        # Degenerate case: every stored element landed in one bucket, so a
        # constant classifier is all that is needed.
        classifier = make_classifier("cart", max_depth=1, random_state=config.seed)
        classifier.fit(features, labels)
        return classifier, None

    options = dict(config.classifier_options)
    cv_score = None
    if config.tune_classifier:
        grid = config.tuning_grid or _default_tuning_grid(config.classifier)
        if grid:
            best_params, cv_score = grid_search(
                lambda **params: make_classifier(
                    config.classifier, random_state=config.seed, **{**options, **params}
                ),
                grid,
                features,
                labels,
                n_splits=min(config.tuning_folds, len(labels)),
                random_state=config.seed,
            )
            options.update(best_params)

    if config.classifier in ("cart", "rf", "logreg"):
        options.setdefault("random_state", config.seed)
    classifier = make_classifier(config.classifier, **options)
    classifier.fit(features, labels)
    return classifier, cv_score


def train_opt_hash(
    prefix: StreamPrefix,
    config: OptHashConfig,
    featurizer: Optional[Callable[[Element], np.ndarray]] = None,
) -> TrainingResult:
    """Run the full learning phase on an observed stream prefix.

    Parameters
    ----------
    prefix:
        The observed prefix ``S0``.
    config:
        Pipeline configuration.
    featurizer:
        Optional callable mapping elements to feature vectors.  When omitted,
        the elements' own feature vectors are used (the synthetic workload);
        the query-log workload passes a fitted
        :class:`~repro.ml.text.QueryFeaturizer` here.
    """
    if len(prefix) == 0:
        raise ValueError("the observed prefix must be non-empty")
    rng = np.random.default_rng(config.seed)
    featurizer = featurizer or default_featurizer

    keys, _, frequencies = prefix.training_arrays()
    distinct_elements = prefix.distinct_elements()
    features = np.array(
        [np.asarray(featurizer(element), dtype=float) for element in distinct_elements]
    )
    if features.ndim == 1:
        features = features.reshape(len(distinct_elements), -1)

    # Optionally sample the elements whose IDs the scheme will store.
    if config.max_stored_elements is not None:
        selected = sample_prefix_elements(
            frequencies,
            config.max_stored_elements,
            proportional_to_frequency=config.sample_proportional_to_frequency,
            rng=rng,
        )
    else:
        selected = np.arange(len(keys))
    stored_keys = [keys[index] for index in selected]
    stored_frequencies = frequencies[selected]
    stored_features = features[selected]

    # Phase 1: learn the bucket assignment.
    solver_result = learn_hashing_scheme(
        stored_frequencies,
        stored_features,
        num_buckets=config.num_buckets,
        lam=config.lam,
        solver=config.solver,
        random_state=config.seed,
        **config.solver_options,
    )
    labels = solver_result.assignment.labels

    # Phase 2: train the classifier for unseen elements.
    classifier, cv_score = _fit_classifier(config, stored_features, labels)

    scheme = OptHashScheme(
        num_buckets=config.num_buckets,
        key_to_bucket={key: int(bucket) for key, bucket in zip(stored_keys, labels)},
        classifier=classifier,
        featurizer=featurizer,
    )
    initial = {key: float(freq) for key, freq in zip(stored_keys, stored_frequencies)}

    if config.adaptive:
        estimator: OptHashEstimator = AdaptiveOptHashEstimator(
            scheme,
            initial_frequencies=initial,
            bloom_bits=config.bloom_bits,
            expected_distinct=config.expected_distinct,
            seed=config.seed,
            backend=config.backend,
        )
    else:
        estimator = OptHashEstimator(
            scheme, initial_frequencies=initial, seed=config.seed
        )

    return TrainingResult(
        estimator=estimator,
        scheme=scheme,
        solver_result=solver_result,
        classifier=classifier,
        stored_keys=stored_keys,
        stored_frequencies=stored_frequencies,
        stored_features=stored_features,
        classifier_cv_score=cv_score,
    )
