"""The proposed learning-based frequency estimator (``opt-hash``).

This subpackage assembles the paper's primary contribution from the
substrates:

1. :func:`~repro.core.pipeline.train_opt_hash` runs the learning phase on an
   observed stream prefix: it computes the empirical frequencies, learns a
   (near-)optimal assignment of the prefix elements to buckets with one of
   the :mod:`repro.optimize` solvers, and trains a :mod:`repro.ml` classifier
   that maps *unseen* elements to buckets from their features.
2. The resulting :class:`~repro.core.scheme.OptHashScheme` (hash table +
   classifier) is wrapped into a streaming estimator:
   :class:`~repro.core.estimator.OptHashEstimator` (the static variant that
   only tracks prefix elements) or
   :class:`~repro.core.estimator.AdaptiveOptHashEstimator` (the Bloom-filter
   extension of Section 5.3 that also counts unseen elements).
"""

from repro.core.scheme import OptHashScheme
from repro.core.estimator import OptHashEstimator, AdaptiveOptHashEstimator
from repro.core.sharding import ShardedEstimator
from repro.core.storage import (
    STORAGE_BACKENDS,
    CounterStorage,
    DenseStorage,
    MmapStorage,
    SharedMemoryStorage,
    StorageBacked,
    StorageError,
)
from repro.core.workers import ShardWorkerPool
from repro.core.pipeline import (
    OptHashConfig,
    TrainingResult,
    train_opt_hash,
    sample_prefix_elements,
    split_bucket_budget,
    replay,
    replay_sharded,
)

__all__ = [
    "OptHashScheme",
    "OptHashEstimator",
    "AdaptiveOptHashEstimator",
    "ShardedEstimator",
    "ShardWorkerPool",
    "STORAGE_BACKENDS",
    "CounterStorage",
    "DenseStorage",
    "SharedMemoryStorage",
    "MmapStorage",
    "StorageBacked",
    "StorageError",
    "OptHashConfig",
    "TrainingResult",
    "train_opt_hash",
    "sample_prefix_elements",
    "split_bucket_budget",
    "replay",
    "replay_sharded",
]
