"""Sharded ingestion: split one logical stream across N estimator shards.

This is the scaling layer the merge/serialization machinery exists for.  A
:class:`ShardedEstimator` owns ``num_shards`` identically-configured
estimators (same factory, hence same seeds and hash functions — the merge
compatibility requirement) and splits every ingested batch across them:

* ``key-partition`` (default): a dedicated fingerprint hash routes each key
  to a fixed shard, so all arrivals of a key land on the same shard.  On
  top of the linear sketches, this makes the hash-table/dictionary
  estimators exact — the exact counter, and the opt-hash estimators
  including the adaptive variant's first-occurrence counting (each key's
  first arrival is seen by exactly one Bloom filter).  Estimators whose
  state couples *different* keys — Misra–Gries / Space-Saving (shared
  decrement/eviction) and conservative CMS (counter-dependent updates) —
  see each key's full, in-order substream, but their collapsed results
  carry the merged-summary guarantees rather than matching a serial run
  bit for bit.
* ``round-robin``: each batch splits into contiguous blocks, one per shard,
  with the shard receiving the first block rotating from batch to batch.
  Equivalent for linear sketches (Count-Min, Count Sketch, AMS, Bloom —
  any split of a stream merges back bit-identically), and the cheapest
  split there is: no routing pass, and NumPy batches shard into zero-copy
  views.  Only approximate for the order-dependent estimators.

Ingestion runs through a ``concurrent.futures`` pool:

* ``serial`` (default): plain loop, no extra threads or processes.
* ``thread``: one :class:`~concurrent.futures.ThreadPoolExecutor` task per
  shard.  Shards are disjoint objects, so no locking is needed; NumPy
  releases the GIL in the hashing kernels, which is where batch ingestion
  spends its time.
* ``process``: true parallelism, with a choice of *transport*:

  - ``transport="serialization"`` (default): a
    :class:`~concurrent.futures.ProcessPoolExecutor` task per batch.  Each
    task ships a *blank* clone of the shard (spec dict or cached
    ``to_bytes()``) plus the sub-batch to a worker, which rehydrates,
    ingests, and returns the updated state as bytes; the parent folds the
    result into the resident shard with ``merge``.  The return leg costs
    one full table serialization + deserialization + merge per batch.
  - ``transport="shm"``: the shards' counter tables live in shared memory
    (``storage="shm"`` via :mod:`repro.core.storage`) and a *persistent*
    worker per shard (:class:`~repro.core.workers.ShardWorkerPool`)
    attaches to its shard's table once, at spawn.  Each batch then ships
    only ``(keys, counts)``; the worker scatters directly into the shared
    table and nothing returns — the return leg is zero-copy, and the
    parent's resident shards read worker progress live.  Requires
    spec-built shards whose kind supports pluggable storage.

  Either way ``update_batch`` submits and returns immediately — results
  are drained lazily, right before anything reads shard state — so the
  parent pipelines batch N+1's routing with batch N's ingestion, with a
  bounded backlog.

Queries default to ``collapse``: merge all shards into one estimator (cached
until the next update) and answer from it — for linear sketches this is
bit-identical to having ingested the whole stream into a single sketch.
``fanout`` mode instead routes each queried key to the shard that owns it
(key-partition only).  Fanout answers are exact only for estimators whose
point query depends solely on the queried key's own accumulated state (the
exact counter); estimators that answer from state *shared* across keys —
bucket averages in the opt-hash estimators, counter tables in the sketches —
split that shared state across shards, so the owning shard alone
under-estimates: query those through ``collapse``.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Callable, Optional, Union

import numpy as np

from repro.api.registry import register_estimator
from repro.api.specs import EstimatorSpec, OptHashSpec, ShardedSpec
from repro.sketches.base import (
    FrequencyEstimator,
    IncompatibleSketchError,
    as_key_batch,
)
from repro.core.workers import WORKER_CHUNK_SIZE, ShardWorkerPool, WorkerDeadError
from repro.sketches.hashing import fingerprint64_batch
from repro.sketches.serialization import (
    SerializationError,
    loads,
    pack,
    peek_tag,
    register_sketch,
    unpack,
)
from repro.streams.stream import Element

__all__ = ["ShardedEstimator", "WORKER_CHUNK_SIZE"]

#: Seed of the shard-routing fingerprint.  Deliberately distinct from any
#: sketch-level hash seed so shard routing is independent of bucket hashing.
DEFAULT_PARTITION_SEED = 0x51A2DED


def _loads_dense(payload: bytes):
    """:func:`loads`, but forcing dense storage when the kind supports it.

    Transport blobs rehydrate *transient* clones (worker blanks, return-leg
    state); letting them allocate the shm segment or mmap file their state
    records would leak one backend resource per batch.
    """
    tag = peek_tag(payload)
    from repro.api.registry import kind_exists, kind_supports_storage

    if kind_exists(tag) and kind_supports_storage(tag):
        return loads(payload, storage="dense")
    return loads(payload)


def _release_discarded(estimator) -> None:
    """Close a replaced/throwaway estimator's storage without the detach
    copy (it is never used again)."""
    release = getattr(estimator, "close", None)
    if release is None:
        return
    try:
        release(detach=False)
    except TypeError:
        release()


def _shard_worker(transport, keys, counts) -> bytes:
    """Process-pool task: materialize a blank shard, ingest, ship state back.

    ``transport`` is ``("spec", spec_dict)`` for spec-built sharded
    estimators — the worker constructs the blank from the declarative spec,
    which is tiny and always picklable — or ``("bytes", blob)`` for the
    legacy closure-factory path, where the parent ships a cached blank
    serialization instead.
    """
    mode, payload = transport
    if mode == "spec":
        from repro.api.registry import build

        # The blank is transient (ingest, serialize, discard): give it no
        # backend of its own, whatever the parent-side spec says — an shm/
        # mmap blank would leak a segment/file in the pool worker per task.
        payload = dict(payload)
        payload.pop("storage", None)
        payload.pop("storage_path", None)
        shard = build(payload)
    else:
        shard = _loads_dense(payload)
    for start in range(0, len(keys), WORKER_CHUNK_SIZE):
        shard.update_batch(
            keys[start : start + WORKER_CHUNK_SIZE],
            counts[start : start + WORKER_CHUNK_SIZE],
        )
    return shard.to_bytes()


def _build_sharded(cls, spec: ShardedSpec, context: dict) -> "ShardedEstimator":
    """Registry builder for ``{"kind": "sharded", "inner": {...}, ...}``.

    Training-free inner specs construct spec-first (each shard, the collapse
    target, and process-mode worker blanks are all built from the spec).  An
    opt-hash inner spec runs its learning phase *once* and every shard wraps
    the shared trained scheme — retraining per shard would produce distinct
    classifier objects, which the merge compatibility checks reject.
    """
    kwargs = dict(
        num_shards=spec.num_shards,
        mode=spec.mode,
        executor=spec.executor,
        query_mode=spec.query_mode,
        transport=spec.transport,
        partition_seed=(
            spec.partition_seed
            if spec.partition_seed is not None
            else DEFAULT_PARTITION_SEED
        ),
    )
    if isinstance(spec.inner, OptHashSpec):
        sharded = cls(_trained_shard_factory(spec.inner, context), **kwargs)
        sharded.estimator_spec = spec.inner
        return sharded
    return cls(spec.inner, **kwargs)


def _trained_shard_factory(inner: OptHashSpec, context: dict) -> Callable:
    """Train opt-hash once; return a factory of scheme-sharing shards."""
    from repro.api.registry import config_from_spec
    from repro.core.estimator import AdaptiveOptHashEstimator, OptHashEstimator
    from repro.core.pipeline import train_opt_hash

    training = train_opt_hash(
        context["prefix"], config_from_spec(inner), featurizer=context.get("featurizer")
    )
    scheme = training.scheme
    initial = {
        key: float(frequency)
        for key, frequency in zip(training.stored_keys, training.stored_frequencies)
    }
    if inner.adaptive:
        return lambda: AdaptiveOptHashEstimator(
            scheme,
            initial_frequencies=initial,
            bloom_bits=inner.bloom_bits,
            expected_distinct=inner.expected_distinct,
            seed=inner.seed,
        )
    return lambda: OptHashEstimator(
        scheme, initial_frequencies=initial, seed=inner.seed
    )


@register_estimator("sharded", spec_cls=ShardedSpec, builder=_build_sharded)
@register_sketch("sharded")
class ShardedEstimator(FrequencyEstimator):
    """N identically-configured estimator shards behind one estimator API.

    Parameters
    ----------
    factory:
        What produces one shard estimator: an
        :class:`~repro.api.specs.EstimatorSpec` (or its JSON-safe dict
        form) built once per shard through ``repro.api.build`` — the
        preferred, picklable transport — or, as a compatibility shim, a
        zero-argument callable.  Every construction must yield an
        identically-configured (mergeable) instance; spec construction
        enforces this by requiring an explicit seed for randomized
        estimators, while a callable must arrange it itself.
    num_shards:
        Number of shards (``k >= 1``).
    mode:
        ``"key-partition"`` (exact for linear sketches and the hash-table/
        dictionary estimators; merged-summary guarantees for the rest) or
        ``"round-robin"`` (exact for linear sketches only).
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docstring).
    query_mode:
        ``"collapse"`` (default; query the merged estimator) or ``"fanout"``
        (route queries to owning shards; requires key partitioning and is
        only exact for per-key-state estimators — see module docstring).
    transport:
        Process-executor transport: ``"serialization"`` (default; state
        round-trips as bytes per batch) or ``"shm"`` (persistent workers
        scatter into shared-memory tables, zero-copy return leg — see
        module docstring).
    partition_seed:
        Seed of the key-routing fingerprint hash.
    """

    MODES = ("key-partition", "round-robin")
    EXECUTORS = ("serial", "thread", "process")
    QUERY_MODES = ("collapse", "fanout")
    TRANSPORTS = ("serialization", "shm")
    #: Process-mode backlog cap: at most this many in-flight batches per
    #: shard before update_batch blocks on the oldest outstanding task.
    _MAX_PENDING_FACTOR = 4

    def __init__(
        self,
        factory: Union[Callable[[], FrequencyEstimator], EstimatorSpec, dict],
        num_shards: int,
        mode: str = "key-partition",
        executor: str = "serial",
        query_mode: str = "collapse",
        transport: str = "serialization",
        partition_seed: int = DEFAULT_PARTITION_SEED,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if executor not in self.EXECUTORS:
            raise ValueError(
                f"executor must be one of {self.EXECUTORS}, got {executor!r}"
            )
        if query_mode not in self.QUERY_MODES:
            raise ValueError(
                f"query_mode must be one of {self.QUERY_MODES}, got {query_mode!r}"
            )
        if transport not in self.TRANSPORTS:
            raise ValueError(
                f"transport must be one of {self.TRANSPORTS}, got {transport!r}"
            )
        if transport == "shm" and executor != "process":
            raise ValueError(
                "the shm transport rides the process executor (other "
                "executors share memory by construction)"
            )
        if query_mode == "fanout" and mode != "key-partition":
            raise ValueError(
                "fanout queries require key partitioning (round-robin spreads "
                "each key's arrivals over every shard)"
            )
        self.num_shards = num_shards
        self.mode = mode
        self.executor = executor
        self.query_mode = query_mode
        self.transport = transport
        self._partition_seed = partition_seed
        #: Inner-shard spec, when known.  Set either by spec-based
        #: construction (then shards are rebuildable from it anywhere) or as
        #: metadata by the registry's trained-factory path.
        self.estimator_spec: Optional[EstimatorSpec] = None
        self._spec_constructible = False
        if not callable(factory):
            from repro.api.registry import (
                build as _api_build,
                check_deterministic_for_sharding,
            )
            from repro.api.specs import spec_from_dict

            spec = spec_from_dict(factory)
            check_deterministic_for_sharding(spec)
            self.estimator_spec = spec
            self._spec_constructible = True
            factory = lambda: _api_build(spec)  # noqa: E731
        self._factory = factory
        # Merge/collapse targets are transient (one per collapse / cached
        # query estimator): build them dense whatever storage the shards
        # use, or every query cycle would allocate a fresh shm segment or
        # orphan an mmap temp file.  Only possible for spec-built shards;
        # a callable factory is opaque.
        self._merge_factory = factory
        if self._spec_constructible:
            base_dict = self.estimator_spec.to_dict()
            had_storage = base_dict.pop("storage", None) is not None
            had_storage = base_dict.pop("storage_path", None) is not None or had_storage
            if had_storage:
                from repro.api.registry import build as _build_dense

                self._merge_factory = lambda: _build_dense(base_dict)
        self._shard_spec_dict = None
        if transport == "shm":
            self._init_shm_shards(num_shards)
        else:
            self.shards = [factory() for _ in range(num_shards)]
        # Shards must speak the batch ingestion + merge protocol; rejecting
        # here turns "bloom cannot shard" into one clear error instead of an
        # AttributeError mid-stream.
        for required in ("update_batch", "merge"):
            if not hasattr(self.shards[0], required):
                raise ValueError(
                    f"{type(self.shards[0]).__name__} cannot be sharded: it "
                    f"has no {required}()"
                )
        self._round_robin_offset = 0
        self._collapsed: Optional[FrequencyEstimator] = None
        self._obs = None
        self._m_routing = None
        self._m_shard_keys = None
        self._m_pending = None
        self._pool = None
        self._transport = None  # per-shard blank transport for process mode
        self._pending = []  # (shard_index, future) pairs awaiting merge
        self._worker_pool: Optional[ShardWorkerPool] = None
        self._closed = False
        #: Supervision (opt-in, shm transport only): a dead worker marks its
        #: shard down instead of failing the whole estimator, ingestion and
        #: queries continue on the survivors, and a supervisor calls
        #: :meth:`rebuild_shard` to bring the shard back.  See
        #: :meth:`enable_supervision`.
        self.supervised = False
        self._down_shards: set = set()
        if executor == "process" and transport == "shm":
            # The persistent worker pool spawns lazily (first ingest or
            # warm_up), so deserialized instances can swap their shards in
            # before any worker attaches a table.
            pass
        elif executor == "process":
            # Both transports still need to_bytes on the *return* leg (the
            # worker ships its ingested state back as bytes), so the shard
            # type must be serializable either way.
            if not hasattr(self.shards[0], "to_bytes"):
                raise ValueError(
                    "the process executor needs serializable shards "
                    f"(to_bytes/from_bytes); {type(self.shards[0]).__name__} "
                    "does not provide them — use the thread or serial executor"
                )
            if self._spec_constructible:
                # Ship the declarative spec: tiny, picklable, and the worker
                # rebuilds an identical blank from it.
                spec_dict = self.estimator_spec.to_dict()
                self._transport = [("spec", spec_dict)] * num_shards
            else:
                try:
                    self._transport = [
                        ("bytes", shard.to_bytes()) for shard in self.shards
                    ]
                except (AttributeError, NotImplementedError) as error:
                    raise ValueError(
                        "the process executor needs serializable shards "
                        f"(to_bytes/from_bytes); {type(self.shards[0]).__name__} "
                        "does not provide them — use the thread or serial "
                        "executor"
                    ) from error
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=num_shards
            )
        elif executor == "thread":
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=num_shards
            )

    # ------------------------------------------------------------------
    # shm transport plumbing
    # ------------------------------------------------------------------
    def _init_shm_shards(self, num_shards: int) -> None:
        """Build the shards with shared-memory counter tables.

        The inner spec is re-targeted at ``storage="shm"`` so each shard's
        table lives in a named segment the persistent workers can attach
        (collapse/merge targets stay dense — see ``_merge_factory``).
        """
        from repro.api.registry import build as _api_build, kind_supports_storage

        if not self._spec_constructible:
            raise ValueError(
                "the shm transport requires spec-built shards (pass an "
                "EstimatorSpec or spec dict, not a callable factory): the "
                "persistent workers rebuild their blank twin from the spec"
            )
        inner_kind = self.estimator_spec.kind
        if not kind_supports_storage(inner_kind):
            raise ValueError(
                f"kind {inner_kind!r} has no pluggable counter storage; use "
                "the serialization transport"
            )
        shard_dict = self.estimator_spec.to_dict()
        if shard_dict.get("storage") == "mmap":
            raise ValueError(
                "mmap-backed shards cannot use the shm transport (one file "
                "cannot back both); pick storage='shm' or the serialization "
                "transport"
            )
        shard_dict["storage"] = "shm"
        shard_dict.pop("storage_path", None)
        self._shard_spec_dict = shard_dict
        base_dict = self.estimator_spec.to_dict()
        base_dict.pop("storage", None)
        base_dict.pop("storage_path", None)
        self._merge_factory = lambda: _api_build(base_dict)
        self.shards = [_api_build(shard_dict) for _ in range(num_shards)]

    def _ensure_workers(self) -> ShardWorkerPool:
        """Spawn the persistent worker pool on first use (shm transport)."""
        if self._closed:
            raise RuntimeError("ShardedEstimator is closed")
        if self._worker_pool is None:
            manifests = [shard.storage_manifest() for shard in self.shards]
            self._worker_pool = ShardWorkerPool(
                self._shard_spec_dict,
                manifests,
                max_pending=self._MAX_PENDING_FACTOR,
                supervised=self.supervised,
            )
            if self._obs is not None:
                self._worker_pool.instrument(self._obs)
        return self._worker_pool

    # ------------------------------------------------------------------
    # supervision (shm transport)
    # ------------------------------------------------------------------
    def enable_supervision(self) -> "ShardedEstimator":
        """Switch to localized failure handling (shm transport only).

        After this, a dead or failed worker no longer poisons the whole
        estimator: its shard joins :attr:`down_shards`, batches routed to it
        are dropped (the service's write-ahead log re-supplies them during
        :meth:`rebuild_shard`), and queries/drains proceed on the
        survivors.  Only meaningful for key-partition routing — round-robin
        spreads every key over all shards, so no single shard can be
        rebuilt from a key-determined log slice.
        """
        if self.transport != "shm":
            raise ValueError("supervision requires the shm transport")
        if self.mode != "key-partition":
            raise ValueError(
                "supervision requires key-partition routing (round-robin "
                "shard content is not determined by the keys)"
            )
        self.supervised = True
        if self._worker_pool is not None:
            self._worker_pool.supervised = True
        return self

    @property
    def down_shards(self) -> frozenset:
        """Shards currently awaiting rebuild (supervised mode)."""
        return frozenset(self._down_shards)

    def check_workers(self) -> set:
        """Detect dead/failed workers; returns the *newly* down shard set.

        Cheap (one ``is_alive`` + one event check per shard) and safe to
        call from a poll loop.  Error messages the dead workers left behind
        are drained without raising — the death is already attributed.
        """
        if not self.supervised or self._worker_pool is None:
            return set()
        newly: set = set()
        for index, worker in enumerate(self._worker_pool._workers):
            if index in self._down_shards:
                continue
            if not worker.process.is_alive() or worker.failed.is_set():
                self._down_shards.add(index)
                newly.add(index)
        if newly:
            self._worker_pool.drain_errors()
            self._collapsed = None
        return newly

    def rebuild_shard(
        self, shard_index: int, *, restored=None, records=(), timeout: float = 30.0
    ) -> "ShardedEstimator":
        """Bring a down shard back: restore counters, revive, replay.

        The shard's shared table is *discarded* (the dead worker may have
        died mid-scatter, leaving a partially-applied batch) and rebuilt
        from ``restored`` — the table from the last snapshot, or zeros when
        none exists — then the worker process is replaced and ``records``
        (the shard's WAL slice since that snapshot) are re-ingested through
        it.  Blocks until the replay is fully acknowledged, so on return
        the shard is exact again.
        """
        if not self.supervised:
            raise RuntimeError("rebuild_shard requires supervision")
        pool = self._ensure_workers()
        shard = self.shards[shard_index]
        field = getattr(shard, "_STORAGE_FIELD", None)
        if field is None:
            raise RuntimeError("supervised shards must be storage-backed")
        table = getattr(shard, field)
        if restored is not None:
            np.copyto(table, np.asarray(restored, dtype=table.dtype))
        else:
            table[...] = 0
        pool.revive(shard_index, shard.storage_manifest(), timeout=timeout)
        for record in records:
            keys = record.keys
            items = keys if isinstance(keys, np.ndarray) else list(keys)
            _, count_array = as_key_batch(items, record.counts)
            pool.submit(shard_index, items, count_array)
        # Drain just this worker (exclude the others: a concurrently-down
        # sibling must not fail the rebuild of this shard).
        pool.join(exclude=frozenset(range(self.num_shards)) - {shard_index})
        self._collapsed = None
        self._down_shards.discard(shard_index)
        return self

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def instrument(self, metrics) -> "ShardedEstimator":
        """Register routing/skew/backlog metrics on a registry.

        Opt-in: an un-instrumented estimator's ingest path carries no
        timing calls at all.  Cascades to the persistent worker pool (now
        or when it spawns) so one registry covers routing *and* scatter.
        """
        self._obs = metrics
        self._m_routing = metrics.histogram(
            "repro_sharded_routing_seconds",
            "Per-batch key-to-shard partitioning latency.",
        )
        self._m_shard_keys = metrics.counter(
            "repro_sharded_keys_total",
            "Arrivals routed to each shard (per-shard key skew).",
            labels=("shard",),
        )
        self._m_pending = metrics.gauge(
            "repro_sharded_pending_batches",
            "Submitted-but-unacked ingestion batches (process executors).",
        )
        if self._worker_pool is not None:
            self._worker_pool.instrument(metrics)
        return self

    def _pending_batches(self) -> int:
        if self._worker_pool is not None:
            return sum(
                max(0, worker.submitted - worker.acked.value)
                for worker in self._worker_pool._workers
            )
        return len(self._pending)

    def sync_metrics(self) -> None:
        """Refresh the backlog gauge and the pool's mirrored counters."""
        if self._obs is None:
            return
        if self._worker_pool is not None:
            self._worker_pool.sync_metrics()
        self._m_pending.set(self._pending_batches())

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of_keys(self, key_batch) -> np.ndarray:
        """Deterministic shard index per key (key-partition routing)."""
        fingerprints = fingerprint64_batch(key_batch, seed=self._partition_seed)
        return (fingerprints % np.uint64(self.num_shards)).astype(np.intp)

    @staticmethod
    def _take(items, indices: np.ndarray):
        if isinstance(items, np.ndarray):
            return items[indices]
        return [items[index] for index in indices]

    def _partition_jobs(self, items, key_batch, count_array, n):
        """Split a normalized batch into per-shard ``(index, keys, counts)``."""
        if self.num_shards == 1:
            return [(0, items, count_array)]
        if self.mode == "round-robin":
            # Contiguous blocks (zero-copy views for arrays), rotating which
            # shard receives the first block so partial batches balance out.
            bounds = [n * block // self.num_shards for block in range(self.num_shards + 1)]
            offset = self._round_robin_offset
            self._round_robin_offset = (offset + 1) % self.num_shards
            return [
                (
                    (offset + block) % self.num_shards,
                    items[bounds[block] : bounds[block + 1]],
                    count_array[bounds[block] : bounds[block + 1]],
                )
                for block in range(self.num_shards)
                if bounds[block + 1] > bounds[block]
            ]
        assignments = self.shard_of_keys(key_batch)
        jobs = []
        for shard_index in range(self.num_shards):
            selected = np.flatnonzero(assignments == shard_index)
            if selected.size:
                jobs.append(
                    (shard_index, self._take(items, selected), count_array[selected])
                )
        return jobs

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def update(self, element: Element) -> None:
        self.update_batch([element])

    def update_batch(self, keys, counts=None) -> None:
        """Split a batch across the shards and ingest each part.

        ``items`` (possibly full elements, for feature-routing estimators)
        are what the shards receive; the normalized key view only drives the
        shard assignment.
        """
        items = keys if isinstance(keys, np.ndarray) else list(keys)
        key_batch, count_array = as_key_batch(items, counts)
        n = len(key_batch)
        if n == 0:
            return
        self._collapsed = None
        if self._obs is not None:
            route_start = time.perf_counter()
            jobs = self._partition_jobs(items, key_batch, count_array, n)
            self._m_routing.observe(time.perf_counter() - route_start)
            for shard_index, part, _ in jobs:
                self._m_shard_keys.labels(shard=str(shard_index)).inc(len(part))
        else:
            jobs = self._partition_jobs(items, key_batch, count_array, n)
        if self.executor == "process" and self.transport == "shm":
            # Persistent workers scatter straight into the shared tables;
            # only (keys, counts) cross the process boundary and nothing
            # returns.  Backpressure is the pool's bounded task queues.
            pool = self._ensure_workers()
            for shard_index, part, part_counts in jobs:
                if self.supervised and shard_index in self._down_shards:
                    # Dropped, not lost: the supervisor re-supplies the
                    # shard's arrivals from the write-ahead log on rebuild.
                    continue
                try:
                    pool.submit(shard_index, part, part_counts)
                except WorkerDeadError as error:
                    if not self.supervised:
                        raise
                    self._down_shards.add(error.shard_index)
                    self._collapsed = None
                    pool.drain_errors()
        elif self.executor == "process":
            # Fire and return: the parent keeps routing the next batch while
            # the workers ingest this one.  Results merge in _drain_pending.
            # Backpressure keeps the backlog (queued key chunks + finished
            # state blobs) bounded when the parent outpaces the workers.
            if len(self._pending) >= self._MAX_PENDING_FACTOR * self.num_shards:
                self._reap_completed()
                while len(self._pending) >= self._MAX_PENDING_FACTOR * self.num_shards:
                    shard_index, future = self._pending.pop(0)
                    self.shards[shard_index].merge(loads(future.result()))
            for shard_index, part, part_counts in jobs:
                self._pending.append(
                    (
                        shard_index,
                        self._pool.submit(
                            _shard_worker,
                            self._transport[shard_index],
                            part,
                            part_counts,
                        ),
                    )
                )
        elif self.executor == "thread":
            list(
                self._pool.map(
                    lambda job: self._ingest_resident(job[0], job[1], job[2]), jobs
                )
            )
        else:
            for shard_index, part, part_counts in jobs:
                self._ingest_resident(shard_index, part, part_counts)

    def _ingest_resident(self, shard_index: int, part, part_counts) -> None:
        """Chunked in-process ingestion into a resident shard.

        Large sub-batches are re-chunked to the cache-friendly size — the
        vectorized sketch kernels lose most of their throughput when their
        scatter/gather temporaries outgrow the cache.
        """
        shard = self.shards[shard_index]
        for start in range(0, len(part), WORKER_CHUNK_SIZE):
            shard.update_batch(
                part[start : start + WORKER_CHUNK_SIZE],
                part_counts[start : start + WORKER_CHUNK_SIZE],
            )

    def _reap_completed(self) -> None:
        """Merge results whose futures already finished (non-blocking)."""
        still_running = []
        for shard_index, future in self._pending:
            if future.done():
                self.shards[shard_index].merge(loads(future.result()))
            else:
                still_running.append((shard_index, future))
        self._pending = still_running

    def _drain_pending(self) -> None:
        """Wait out / merge every outstanding ingestion task.

        Serialization transport: merge each returned state blob.  Shm
        transport: block until the workers have acked every submitted batch
        (their writes land in the shared tables directly).
        """
        if self._worker_pool is not None:
            if self.supervised:
                # Survivors drain; a down shard's backlog is unreachable
                # until rebuild (and re-supplied by the WAL then).  A worker
                # dying *during* this drain joins the down set instead of
                # failing the consistency point for the healthy shards.
                while True:
                    try:
                        self._worker_pool.join(exclude=frozenset(self._down_shards))
                        break
                    except WorkerDeadError as error:
                        self._down_shards.add(error.shard_index)
                        self._collapsed = None
                        self._worker_pool.drain_errors()
            else:
                self._worker_pool.join()
        pending, self._pending = self._pending, []
        for shard_index, future in pending:
            self.shards[shard_index].merge(loads(future.result()))

    def drain(self) -> "ShardedEstimator":
        """Block until every submitted batch is reflected in shard state.

        The public face of the lazy-drain machinery, for callers that need
        a consistency point without a query — the streaming service drains
        before every snapshot, and its ``flush`` op is exactly this.  A
        worker that died or failed mid-stream raises here instead of
        hanging.  No-op when nothing is outstanding (serial/thread
        executors ingest synchronously).
        """
        self._drain_pending()
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def estimate(self, element: Element) -> float:
        return float(self.estimate_batch([element])[0])

    def estimate_batch(self, keys) -> np.ndarray:
        if self.query_mode == "fanout":
            return self._fanout_estimate(keys)
        return self.collapsed().estimate_batch(keys)

    def _fanout_estimate(self, keys) -> np.ndarray:
        self._drain_pending()
        items = keys if isinstance(keys, np.ndarray) else list(keys)
        key_batch, _ = as_key_batch(items)
        n = len(key_batch)
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        estimates = np.zeros(n, dtype=np.float64)
        assignments = self.shard_of_keys(key_batch)
        for shard_index in range(self.num_shards):
            selected = np.flatnonzero(assignments == shard_index)
            if selected.size:
                estimates[selected] = self.shards[shard_index].estimate_batch(
                    self._take(items, selected)
                )
        return estimates

    # ------------------------------------------------------------------
    # collapse / lifecycle
    # ------------------------------------------------------------------
    def collapse(self) -> FrequencyEstimator:
        """Merge every shard into one fresh estimator and return it.

        The merge target comes from the factory — another identically-
        configured instance, sharing any referenced objects (learned scheme,
        oracle, classifier) with the shards, so the identity-based
        compatibility checks hold by construction.  For linear sketches the
        result is bit-identical to single-sketch ingestion of the whole
        stream; for the counter summaries it carries the standard
        merged-summary guarantees.
        """
        self._drain_pending()
        merged = self._merge_factory()
        for shard in self.shards:
            merged.merge(shard)
        return merged

    def collapsed(self) -> FrequencyEstimator:
        """Cached :meth:`collapse`, invalidated by the next update."""
        if self._collapsed is None:
            self._collapsed = self.collapse()
        return self._collapsed

    def live_estimate(self, keys) -> np.ndarray:
        """Point queries against the shards' *current* state, without
        draining in-flight batches.

        With the shm transport the workers write the shared tables in
        place, so this observes their progress mid-stream — the reason the
        backend exists.  (With the other executors it simply skips the
        drain; estimates lag by whatever is still queued.)  Answers are
        exact once the stream is drained, monotone under-counts before.
        """
        merged = self._merge_factory()
        for index, shard in enumerate(self.shards):
            if self.supervised and index in self._down_shards:
                # A down shard's table may hold a torn, partially-scattered
                # batch; degraded answers come from the survivors only.
                continue
            merged.merge(shard)
        return merged.estimate_batch(keys)

    def warm_up(self) -> "ShardedEstimator":
        """Eagerly spawn the executor's workers.

        A :class:`~concurrent.futures.ProcessPoolExecutor` forks lazily on
        first submit, which would otherwise charge worker startup to the
        first ingested batch; long-lived services warm the pool at deploy
        time instead.  For the shm transport this spawns the persistent
        workers and blocks until each has attached its shard's table.
        No-op for the serial executor.
        """
        if self.executor == "process" and self.transport == "shm":
            self._ensure_workers().wait_ready()
            return self
        if self._pool is not None:
            list(self._pool.map(int, range(self.num_shards), chunksize=1))
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Drain outstanding work and release every backend resource.

        Idempotent.  Shuts down the executor/worker pools and releases the
        shards' counter storage: owned shm segments are unlinked, mmap
        handles flushed and closed (files kept).  The shards detach into
        private dense copies first, so the estimator keeps answering
        queries after close.  ``timeout`` bounds the worker pool's
        ack-counting shutdown drain (shm transport): workers still
        undrained at the deadline are terminated.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._drain_pending()
        finally:
            if self._worker_pool is not None:
                self._worker_pool.close(timeout=timeout)
                self._worker_pool = None
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
            for shard in self.shards:
                release = getattr(shard, "close", None)
                if release is not None:
                    release()

    def __enter__(self) -> "ShardedEstimator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # FrequencyEstimator plumbing
    # ------------------------------------------------------------------
    @property
    def routes_by_features(self) -> bool:
        """Replay must keep elements when any shard routes by features."""
        return any(
            getattr(shard, "routes_by_features", False) for shard in self.shards
        )

    @property
    def kernel_backend(self):
        """The kernel backend the shards run on (None for non-kernel kinds).

        Shards are built from one spec, so shard 0 speaks for all of them.
        """
        return getattr(self.shards[0], "kernel_backend", None)

    @property
    def storage_backend(self):
        """The storage backend holding shard counters (None when inapplicable)."""
        return getattr(self.shards[0], "storage_backend", None)

    @property
    def size_bytes(self) -> int:
        self._drain_pending()
        return sum(shard.size_bytes for shard in self.shards)

    def merge(self, other: FrequencyEstimator) -> FrequencyEstimator:
        """Merge another sharded (or plain) estimator into this one.

        A :class:`ShardedEstimator` with the same layout (shard count, mode,
        partition seed) merges shard by shard, preserving fan-out routing.
        Anything else — a plain estimator, or a differently-laid-out sharded
        one — is folded into shard 0, which keeps collapse-mode queries
        exact but would corrupt fan-out routing, so it is rejected when
        ``query_mode == "fanout"``.
        """
        self._collapsed = None
        self._drain_pending()
        if isinstance(other, ShardedEstimator):
            other._drain_pending()
        if (
            isinstance(other, ShardedEstimator)
            and other.num_shards == self.num_shards
            and other.mode == self.mode
            and other._partition_seed == self._partition_seed
        ):
            for mine, theirs in zip(self.shards, other.shards):
                mine.merge(theirs)
            return self
        if self.query_mode == "fanout":
            raise IncompatibleSketchError(
                "cannot fold foreign state into a fanout-queried sharded "
                "estimator: keys would no longer resolve to the shard that "
                "holds their counts"
            )
        folded = other.collapse() if isinstance(other, ShardedEstimator) else other
        self.shards[0].merge(folded)
        return self

    # ------------------------------------------------------------------
    # spec / describe / serialization
    # ------------------------------------------------------------------
    def spec(self) -> Optional[ShardedSpec]:
        """The full :class:`ShardedSpec` of this estimator, when known.

        Available for spec-based construction (and for the registry's
        trained opt-hash path, whose inner spec is recorded as metadata);
        ``None`` when built from an opaque callable factory.
        """
        if self.estimator_spec is None:
            return None
        return ShardedSpec(
            self.estimator_spec,
            num_shards=self.num_shards,
            mode=self.mode,
            executor=self.executor,
            query_mode=self.query_mode,
            transport=self.transport,
            partition_seed=(
                None
                if self._partition_seed == DEFAULT_PARTITION_SEED
                else self._partition_seed
            ),
        )

    def _describe_params(self) -> dict:
        params = {
            "num_shards": self.num_shards,
            "mode": self.mode,
            "executor": self.executor,
            "query_mode": self.query_mode,
            "transport": self.transport,
        }
        if self.estimator_spec is not None:
            params["inner"] = self.estimator_spec.to_dict()
        else:
            params["inner"] = type(self.shards[0]).__name__
        return params

    def to_bytes(self) -> bytes:
        """Serialize layout spec + every shard's state into one buffer.

        Requires spec-based construction: the buffer must carry enough to
        rebuild the estimator anywhere, and an opaque callable factory
        cannot travel.
        """
        if not self._spec_constructible:
            raise SerializationError(
                "only spec-built ShardedEstimators serialize; this one was "
                "constructed from a callable factory (build it from a "
                "ShardedSpec / spec dict instead)"
            )
        self._drain_pending()
        arrays = {
            f"shard_{index}": np.frombuffer(shard.to_bytes(), dtype=np.uint8)
            for index, shard in enumerate(self.shards)
        }
        state = {
            "spec": self.spec().to_dict(),
            "round_robin_offset": self._round_robin_offset,
        }
        return pack("sharded", state, arrays)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShardedEstimator":
        _, state, arrays = unpack(data, expect_tag="sharded")
        spec_dict = state.get("spec")
        if not isinstance(spec_dict, dict):
            raise SerializationError("sharded buffer is missing its spec")
        from repro.api.registry import build as _api_build
        from repro.api.specs import SpecError

        try:
            sharded = _api_build(spec_dict)
        except SpecError as error:
            raise SerializationError(
                f"sharded buffer holds an invalid spec: {error}"
            ) from error
        expect_kind = spec_dict.get("inner", {}).get("kind")
        for index in range(sharded.num_shards):
            name = f"shard_{index}"
            if name not in arrays:
                raise SerializationError(f"sharded buffer is missing {name!r}")
            replaced = sharded.shards[index]
            sharded.shards[index] = loads(
                arrays[name].tobytes(), expect_kind=expect_kind
            )
            # The build-time shard is dropped unused; release its storage
            # (shm-transport builds allocate one segment per shard) without
            # the keep-queryable detach copy.
            _release_discarded(replaced)
        sharded._round_robin_offset = int(state.get("round_robin_offset", 0))
        sharded._collapsed = None
        return sharded
