"""The learned hashing scheme: exact hash table + classifier (paper Section 5).

After the optimization phase every prefix element has an integer hash code
(its bucket).  The scheme that replaces a random hash function therefore has
two parts:

* ``h_S`` — an exact mapping from the IDs of elements seen in the prefix to
  their learned bucket (a plain hash table);
* ``h_U`` — a multi-class classifier over element features that predicts a
  bucket for elements *not* seen in the prefix.

:class:`OptHashScheme` packages the two together with the featurizer used to
turn elements into classifier inputs.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Sequence

import numpy as np

from repro.ml.base import Classifier
from repro.streams.stream import Element

__all__ = ["OptHashScheme", "default_featurizer"]


def default_featurizer(element: Element) -> np.ndarray:
    """Use the element's own feature vector as classifier input."""
    return element.feature_array()


class OptHashScheme:
    """Learned mapping of elements to buckets.

    Parameters
    ----------
    num_buckets:
        Number of buckets ``b`` of the scheme.
    key_to_bucket:
        The exact hash table ``h_S`` for elements seen in the prefix.
    classifier:
        Fitted multi-class classifier ``h_U`` predicting buckets from
        features; ``None`` means unseen elements cannot be routed (they fall
        back to bucket 0).
    featurizer:
        Callable mapping an :class:`Element` to the classifier's input
        vector.  Defaults to the element's own features.
    """

    def __init__(
        self,
        num_buckets: int,
        key_to_bucket: Dict[Hashable, int],
        classifier: Optional[Classifier] = None,
        featurizer: Optional[Callable[[Element], np.ndarray]] = None,
    ) -> None:
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        for key, bucket in key_to_bucket.items():
            if not 0 <= bucket < num_buckets:
                raise ValueError(
                    f"bucket {bucket} of key {key!r} outside [0, {num_buckets})"
                )
        self.num_buckets = num_buckets
        self.key_to_bucket = dict(key_to_bucket)
        self.classifier = classifier
        self.featurizer = featurizer or default_featurizer
        # Classifier predictions are deterministic per key, so they are cached
        # to keep repeated queries (and the adaptive estimator's updates) fast.
        self._prediction_cache: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def is_seen(self, element: Element) -> bool:
        """Was this element part of the training prefix?"""
        return element.key in self.key_to_bucket

    def bucket_of(self, element: Element) -> int:
        """Bucket of an element: hash table if seen, classifier otherwise."""
        bucket = self.key_to_bucket.get(element.key)
        if bucket is not None:
            return bucket
        return self.predict_bucket(element)

    def predict_bucket(self, element: Element) -> int:
        """Bucket predicted by the classifier (ignoring the hash table)."""
        if self.classifier is None:
            return 0
        cached = self._prediction_cache.get(element.key)
        if cached is not None:
            return cached
        features = np.asarray(self.featurizer(element), dtype=float).reshape(1, -1)
        bucket = int(self.classifier.predict(features)[0])
        self._prediction_cache[element.key] = bucket
        return bucket

    def predict_buckets(self, elements: Sequence[Element]) -> np.ndarray:
        """Vectorized classifier prediction for many elements (fills the cache)."""
        if self.classifier is None:
            return np.zeros(len(elements), dtype=int)
        if len(elements) == 0:
            return np.zeros(0, dtype=int)
        features = np.array(
            [np.asarray(self.featurizer(element), dtype=float) for element in elements]
        )
        buckets = np.asarray(self.classifier.predict(features), dtype=int)
        for element, bucket in zip(elements, buckets):
            self._prediction_cache[element.key] = int(bucket)
        return buckets

    def buckets_batch(self, elements: Sequence[Element]) -> np.ndarray:
        """Vectorized :meth:`bucket_of` over many elements.

        Unseen, uncached elements are classified in one batched ``predict``
        call; the rest resolve through the exact hash table / prediction
        cache.  Accepts raw keys as well as elements (raw keys only work
        when the featurizer needs nothing beyond the key, e.g. with the
        exact table or a key-based featurizer).
        """
        items = list(elements)
        if items and not isinstance(items[0], Element):
            items = [Element(key=key) for key in items]
        self.precompute(items)
        table = self.key_to_bucket
        cache = self._prediction_cache
        return np.fromiter(
            (
                table[element.key]
                if element.key in table
                else cache.get(element.key, 0)
                for element in items
            ),
            dtype=np.int64,
            count=len(items),
        )

    def precompute(self, elements: Sequence[Element]) -> None:
        """Batch-predict and cache buckets for many (unseen) elements.

        The evaluation harness calls this before issuing a large batch of
        point queries so the classifier runs once instead of per query.
        """
        pending = [
            element
            for element in elements
            if element.key not in self.key_to_bucket
            and element.key not in self._prediction_cache
        ]
        if pending:
            self.predict_buckets(pending)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_stored_ids(self) -> int:
        """Number of element IDs stored in the exact hash table."""
        return len(self.key_to_bucket)

    def hash_codes(self) -> Dict[Hashable, int]:
        """A copy of the exact hash table (key → bucket)."""
        return dict(self.key_to_bucket)

    def bucket_population(self) -> np.ndarray:
        """Number of stored (prefix) elements per bucket."""
        population = np.zeros(self.num_buckets, dtype=int)
        for bucket in self.key_to_bucket.values():
            population[bucket] += 1
        return population
