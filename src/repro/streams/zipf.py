"""Zipfian popularity distributions.

Search-query and network workloads are heavy-tailed; the paper (and the
Learned CMS paper it builds on) model them as Zipfian.  This module provides
a small, seedable Zipf sampler over a *finite* support of ranks, which both
the query-log generator and several tests use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["zipf_weights", "ZipfSampler"]


def zipf_weights(num_items: int, exponent: float = 1.0) -> np.ndarray:
    """Return normalized Zipf probabilities for ranks ``1..num_items``.

    ``p_r ∝ 1 / r^exponent``.  The returned vector sums to one.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class ZipfSampler:
    """Sample ranks from a finite Zipf distribution.

    Parameters
    ----------
    num_items:
        Size of the support (ranks ``0..num_items-1`` are returned).
    exponent:
        Zipf exponent; ``1.0`` gives the classic harmonic decay.
    rng:
        Optional numpy random generator for reproducibility.
    """

    def __init__(
        self,
        num_items: int,
        exponent: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.num_items = num_items
        self.exponent = exponent
        self._rng = rng if rng is not None else np.random.default_rng()
        self._weights = zipf_weights(num_items, exponent)
        self._cumulative = np.cumsum(self._weights)

    @property
    def weights(self) -> np.ndarray:
        """Normalized probability of each rank (rank 0 is the most popular)."""
        return self._weights.copy()

    def expected_counts(self, num_arrivals: int) -> np.ndarray:
        """Expected number of occurrences of each rank in ``num_arrivals``."""
        return self._weights * num_arrivals

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ranks (0-based) i.i.d. from the distribution."""
        if size < 0:
            raise ValueError("size must be non-negative")
        uniforms = self._rng.random(size)
        return np.searchsorted(self._cumulative, uniforms, side="right")

    def sample_one(self) -> int:
        """Draw a single rank."""
        return int(self.sample(1)[0])
