"""Synthetic AOL-like search-query log (substitute for the paper's Section 7 data).

The paper evaluates on the AOL query log: 21 million queries (3.8 million
unique) over 90 days, whose frequency distribution is Zipfian.  That dataset
is not redistributable, so this module generates a synthetic query log with
the same statistical structure:

* **Zipfian popularity.**  Query popularity follows a finite Zipf law whose
  exponent (default 0.8) matches the rank/frequency pairs quoted in the
  paper (rank 1 ≈ 251k occurrences over 90 days, rank 10 ≈ 37k, rank 100 ≈
  5.2k, rank 1000 ≈ 926, rank 10000 ≈ 146).
* **Realistic query text.**  Head queries are short navigational queries
  ("google", "www.yahoo.com", ...), while tail queries are longer multi-word
  phrases, so textual features (length, whitespace count, presence of "www"
  or "com") correlate with frequency exactly as the paper's feature-importance
  discussion describes.
* **Day-over-day persistence.**  The same popularity distribution drives
  every day, with a configurable per-day churn of brand-new tail queries, so
  popular queries recur across days (the property that makes the learned
  scheme effective) while the universe keeps growing.

The generator is seeded and produces day-by-day :class:`~repro.streams.stream.Stream`
objects on demand, so benchmarks can simulate the 90-day experiment at a
laptop-friendly scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.streams.stream import Element, FrequencyVector, Stream, StreamPrefix
from repro.streams.zipf import zipf_weights

__all__ = ["Query", "QueryLogConfig", "QueryLogGenerator", "QueryLogDataset"]


# A small vocabulary used to synthesize query text.  Head tokens appear in
# popular (often navigational) queries; tail tokens build long rare queries.
_HEAD_SITES = [
    "google", "yahoo", "myspace", "ebay", "mapquest", "amazon", "craigslist",
    "weather", "hotmail", "aol", "bankofamerica", "walmart", "target",
    "youtube", "facebook", "ask", "msn", "netflix", "expedia", "imdb",
]

_TAIL_TOKENS = [
    "cheap", "free", "best", "how", "to", "buy", "sale", "used", "new",
    "reviews", "pictures", "lyrics", "recipes", "hotels", "flights", "games",
    "movie", "music", "download", "online", "casino", "insurance", "jobs",
    "homes", "cars", "dogs", "cats", "school", "college", "university",
    "county", "city", "map", "directions", "phone", "number", "address",
    "history", "definition", "symptoms", "treatment", "diet", "exercise",
    "wedding", "baby", "names", "stone", "sharon", "coupons", "codes",
    "florida", "texas", "california", "york", "chicago", "vegas", "beach",
]


@dataclass(frozen=True)
class Query:
    """A unique query with its text and popularity rank (0-based)."""

    rank: int
    text: str


@dataclass
class QueryLogConfig:
    """Configuration of the synthetic query log.

    Attributes
    ----------
    num_unique_queries:
        Number of distinct queries in the base universe (the paper has 3.8M;
        the default is laptop-scale).
    num_days:
        Number of days of traffic to simulate (90 in the paper).
    arrivals_per_day:
        Number of query arrivals per day.
    zipf_exponent:
        Exponent of the Zipfian popularity law (0.8 matches the paper's
        quoted rank/frequency pairs).
    daily_churn_fraction:
        Fraction of each day's arrivals drawn from brand-new tail queries
        never seen before (models universe growth).
    seed:
        Seed for reproducibility.
    """

    num_unique_queries: int = 20_000
    num_days: int = 90
    arrivals_per_day: int = 20_000
    zipf_exponent: float = 0.8
    daily_churn_fraction: float = 0.02
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_unique_queries <= 0:
            raise ValueError("num_unique_queries must be positive")
        if self.num_days <= 0:
            raise ValueError("num_days must be positive")
        if self.arrivals_per_day <= 0:
            raise ValueError("arrivals_per_day must be positive")
        if not 0 <= self.daily_churn_fraction < 1:
            raise ValueError("daily_churn_fraction must lie in [0, 1)")


class QueryLogGenerator:
    """Generates the query universe and day-by-day streams."""

    def __init__(self, config: QueryLogConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._queries = self._build_universe()
        self._weights = zipf_weights(config.num_unique_queries, config.zipf_exponent)
        self._cumulative = np.cumsum(self._weights)
        self._churn_counter = 0

    # ------------------------------------------------------------------
    # query text synthesis
    # ------------------------------------------------------------------
    def _head_text(self, rank: int) -> str:
        """Text of a popular query: navigational, short, often with www/com."""
        site = _HEAD_SITES[rank % len(_HEAD_SITES)]
        style = rank % 3
        if style == 0:
            return site
        if style == 1:
            return f"www.{site}.com"
        return f"{site}.com"

    def _tail_text(self, rank: int) -> str:
        """Text of a rare query: multiple tokens drawn from the tail vocabulary."""
        rng = np.random.default_rng(rank + 7919)  # deterministic per rank
        num_tokens = 2 + int(rng.integers(0, 5))
        tokens = [str(_TAIL_TOKENS[int(t)]) for t in rng.integers(0, len(_TAIL_TOKENS), num_tokens)]
        if rng.random() < 0.15:
            tokens.append(f"{int(rng.integers(1950, 2007))}")
        return " ".join(tokens)

    def _query_text(self, rank: int) -> str:
        head_cutoff = max(1, self.config.num_unique_queries // 200)
        if rank < len(_HEAD_SITES) * 3:
            return self._head_text(rank)
        if rank < head_cutoff:
            # Moderately popular: site + one qualifier.
            site = _HEAD_SITES[rank % len(_HEAD_SITES)]
            token = _TAIL_TOKENS[rank % len(_TAIL_TOKENS)]
            return f"{site} {token}"
        return self._tail_text(rank)

    def _build_universe(self) -> List[Query]:
        queries: List[Query] = []
        seen_text: Dict[str, int] = {}
        for rank in range(self.config.num_unique_queries):
            text = self._query_text(rank)
            # Deduplicate identical synthesized texts by appending the rank.
            if text in seen_text:
                text = f"{text} {rank}"
            seen_text[text] = rank
            queries.append(Query(rank=rank, text=text))
        return queries

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def queries(self) -> List[Query]:
        """The base query universe ordered by popularity rank."""
        return list(self._queries)

    def query_text(self, rank: int) -> str:
        return self._queries[rank].text

    def popularity_weights(self) -> np.ndarray:
        """Normalized arrival probability of each base query."""
        return self._weights.copy()

    # ------------------------------------------------------------------
    # stream generation
    # ------------------------------------------------------------------
    def _element(self, text: str) -> Element:
        return Element(key=text)

    def _new_churn_query(self) -> str:
        self._churn_counter += 1
        rank = self.config.num_unique_queries + self._churn_counter
        return f"{self._tail_text(rank)} {rank}"

    def generate_day(self, day: int) -> Stream:
        """Generate one day of query arrivals.

        The ``day`` argument only affects the random draws (all days share
        the same popularity distribution), so popular queries recur daily.
        """
        cfg = self.config
        num_churn = int(round(cfg.daily_churn_fraction * cfg.arrivals_per_day))
        num_base = cfg.arrivals_per_day - num_churn
        uniforms = self._rng.random(num_base)
        ranks = np.searchsorted(self._cumulative, uniforms, side="right")
        arrivals = [self._element(self._queries[int(r)].text) for r in ranks]
        arrivals.extend(
            self._element(self._new_churn_query()) for _ in range(num_churn)
        )
        self._rng.shuffle(arrivals)
        return Stream(arrivals=arrivals)

    def generate_dataset(self) -> "QueryLogDataset":
        """Materialize all days into a :class:`QueryLogDataset`."""
        days = [self.generate_day(day) for day in range(self.config.num_days)]
        return QueryLogDataset(config=self.config, days=days)


@dataclass
class QueryLogDataset:
    """A materialized multi-day query log.

    Day 0 plays the role of the observed prefix ``S0`` in the paper's
    real-data experiments.
    """

    config: QueryLogConfig
    days: List[Stream]

    def prefix(self) -> StreamPrefix:
        """Day 0 as the training prefix."""
        return StreamPrefix(arrivals=list(self.days[0].arrivals))

    def cumulative_frequencies(self, through_day: int) -> FrequencyVector:
        """Exact frequencies aggregated over days ``0..through_day`` inclusive."""
        if not 0 <= through_day < len(self.days):
            raise ValueError("through_day out of range")
        freq = FrequencyVector()
        for day in self.days[: through_day + 1]:
            for element in day:
                freq.increment(element.key)
        return freq

    def arrivals_after_prefix(self, through_day: int):
        """Iterate over arrivals of days ``1..through_day`` inclusive."""
        if not 0 <= through_day < len(self.days):
            raise ValueError("through_day out of range")
        for day in self.days[1 : through_day + 1]:
            yield from day

    def queries_seen_by(self, through_day: int) -> List[str]:
        """Distinct query texts appearing in days ``0..through_day``."""
        seen = set()
        ordered: List[str] = []
        for day in self.days[: through_day + 1]:
            for element in day:
                if element.key not in seen:
                    seen.add(element.key)
                    ordered.append(element.key)
        return ordered
