"""Stream model and workload generators.

This subpackage provides the data-stream abstractions used throughout the
library (:class:`~repro.streams.stream.Element`,
:class:`~repro.streams.stream.Stream`), plus the two workload generators the
paper evaluates on:

* :mod:`repro.streams.synthetic` — the group-structured synthetic generator of
  Section 6.1 (``G`` groups of exponentially increasing sizes, Gaussian
  features, group arrival probability proportional to ``1/g``).
* :mod:`repro.streams.querylog` — a synthetic AOL-like search-query log with
  Zipfian query popularity and realistic query text, standing in for the
  proprietary AOL dataset used in Section 7.
"""

from repro.streams.stream import (
    Element,
    FrequencyVector,
    Stream,
    StreamPrefix,
    exact_frequencies,
)
from repro.streams.zipf import ZipfSampler, zipf_weights
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator
from repro.streams.querylog import (
    Query,
    QueryLogConfig,
    QueryLogGenerator,
    QueryLogDataset,
)

__all__ = [
    "Element",
    "FrequencyVector",
    "Stream",
    "StreamPrefix",
    "exact_frequencies",
    "ZipfSampler",
    "zipf_weights",
    "SyntheticConfig",
    "SyntheticGenerator",
    "Query",
    "QueryLogConfig",
    "QueryLogGenerator",
    "QueryLogDataset",
]
