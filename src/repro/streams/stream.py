"""Core stream abstractions.

The paper models the input as an ordered sequence ``S = (u_1, ..., u_|S|)``
of elements drawn from a finite universe ``U``.  Each element carries a
unique key (ID) and a feature vector.  The goal of a frequency estimator is,
at the end of the stream, to answer ``f_u`` — the number of occurrences of
``u`` in ``S`` — using space much smaller than ``min(|S|, |U|)``.

This module provides light-weight containers for elements, streams, stream
prefixes, and exact frequency vectors.  They are deliberately simple so the
estimators (which are the point of the library) stay decoupled from how the
workloads are produced.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "Element",
    "Stream",
    "StreamPrefix",
    "FrequencyVector",
    "exact_frequencies",
]


@dataclass(frozen=True)
class Element:
    """A single stream element ``u = (k, x)``.

    Parameters
    ----------
    key:
        Unique identifier of the element within the universe.  Any hashable
        value is accepted (integers for synthetic data, query strings for the
        query-log workload).
    features:
        Feature vector ``x`` associated with the element.  Stored as a tuple
        of floats so elements remain hashable and immutable.
    """

    key: Hashable
    features: tuple = ()

    @staticmethod
    def with_features(key: Hashable, features: Sequence[float]) -> "Element":
        """Build an element from any sequence of numeric features."""
        return Element(key=key, features=tuple(float(v) for v in features))

    def feature_array(self) -> np.ndarray:
        """Return the features as a 1-D numpy array of floats."""
        return np.asarray(self.features, dtype=float)


class FrequencyVector:
    """Exact per-key frequency counts with convenience accessors.

    This is the ground-truth object benchmarks compare estimators against.
    It behaves like a read-mostly mapping from keys to integer counts.
    """

    def __init__(self, counts: Optional[Dict[Hashable, int]] = None) -> None:
        self._counts: Counter = Counter(counts or {})

    def increment(self, key: Hashable, amount: int = 1) -> None:
        """Add ``amount`` occurrences of ``key``."""
        if amount < 0:
            raise ValueError("frequency increments must be non-negative")
        self._counts[key] += amount

    def increment_batch(self, keys, counts=None) -> None:
        """Add a whole batch of arrivals in one C-speed ``Counter`` update."""
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        if counts is None:
            self._counts.update(keys)
            return
        counts = np.asarray(counts)
        if len(counts) != len(keys):
            raise ValueError("counts must align one-to-one with keys")
        if len(counts) and counts.min() < 0:
            raise ValueError("frequency increments must be non-negative")
        for key, amount in zip(keys, counts.tolist()):
            self._counts[key] += amount

    def counts_for(self, keys) -> np.ndarray:
        """Vectorized lookup: a float64 array of counts aligned with ``keys``."""
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        counts = self._counts
        return np.fromiter(
            (counts.get(key, 0) for key in keys), dtype=np.float64, count=len(keys)
        )

    def __getitem__(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._counts)

    def keys(self):
        return self._counts.keys()

    def items(self):
        return self._counts.items()

    def values(self):
        return self._counts.values()

    @property
    def total(self) -> int:
        """Total number of stream arrivals recorded (the L1 norm)."""
        return sum(self._counts.values())

    def most_common(self, k: Optional[int] = None) -> List[tuple]:
        """Return the ``k`` most frequent ``(key, count)`` pairs."""
        return self._counts.most_common(k)

    def copy(self) -> "FrequencyVector":
        return FrequencyVector(dict(self._counts))

    def as_dict(self) -> Dict[Hashable, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FrequencyVector(unique={len(self)}, total={self.total})"


def exact_frequencies(elements: Iterable[Element]) -> FrequencyVector:
    """Compute the exact frequency vector of a sequence of elements."""
    freq = FrequencyVector()
    if isinstance(elements, Stream):
        freq.increment_batch(elements.key_array())
    else:
        freq.increment_batch([element.key for element in elements])
    return freq


@dataclass
class Stream:
    """An ordered, finite sequence of :class:`Element` arrivals.

    The stream also records the universe of *distinct* elements so callers
    can ask for features of elements that never arrive (needed when we query
    estimators about unseen elements).
    """

    arrivals: List[Element] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self) -> Iterator[Element]:
        return iter(self.arrivals)

    def __getitem__(self, index):
        return self.arrivals[index]

    def append(self, element: Element) -> None:
        self.arrivals.append(element)
        self._key_cache = None

    def extend(self, elements: Iterable[Element]) -> None:
        self.arrivals.extend(elements)
        self._key_cache = None

    # ------------------------------------------------------------------
    # batch key extraction (the ingestion fast path)
    # ------------------------------------------------------------------
    def key_array(self) -> np.ndarray:
        """The arrival keys as one array, ready for ``update_batch``.

        Integer keys come back as an int64 array (the fully vectorized
        ingestion path); any other key type comes back as a 1-D object
        array.  The array is cached until the stream is mutated — do not
        modify it in place.
        """
        cached = getattr(self, "_key_cache", None)
        if cached is not None:
            return cached
        keys = [element.key for element in self.arrivals]
        try:
            array = np.asarray(keys)
            if array.ndim != 1 or array.dtype.kind not in "iu":
                raise ValueError
        except (ValueError, OverflowError):
            array = np.empty(len(keys), dtype=object)
            array[:] = keys
        self._key_cache = array
        return array

    def iter_key_batches(self, batch_size: int = 65536) -> Iterator[np.ndarray]:
        """Yield the arrival keys as consecutive arrays of ``batch_size``."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        keys = self.key_array()
        for start in range(0, len(keys), batch_size):
            yield keys[start : start + batch_size]

    def prefix(self, length: int) -> "StreamPrefix":
        """Return the first ``length`` arrivals as a :class:`StreamPrefix`."""
        if length < 0:
            raise ValueError("prefix length must be non-negative")
        return StreamPrefix(arrivals=list(self.arrivals[:length]))

    def suffix(self, start: int) -> "Stream":
        """Return the arrivals from position ``start`` onwards."""
        return Stream(arrivals=list(self.arrivals[start:]))

    def frequencies(self) -> FrequencyVector:
        """Exact frequencies over the whole stream."""
        return exact_frequencies(self.arrivals)

    def distinct_elements(self) -> List[Element]:
        """Distinct elements in arrival order of first appearance."""
        seen = set()
        distinct: List[Element] = []
        for element in self.arrivals:
            if element.key not in seen:
                seen.add(element.key)
                distinct.append(element)
        return distinct

    def distinct_keys(self) -> List[Hashable]:
        return [element.key for element in self.distinct_elements()]


class StreamPrefix(Stream):
    """The observed prefix ``S0`` used to train the hashing scheme.

    A prefix is just a stream with convenience accessors for the quantities
    the learning phase needs: the set ``U0`` of distinct prefix elements, the
    empirical frequency vector ``f0``, and aligned arrays of keys, features
    and frequencies for the optimizers.
    """

    def empirical_frequencies(self) -> FrequencyVector:
        """Alias of :meth:`Stream.frequencies` named as in the paper (f0)."""
        return self.frequencies()

    def training_arrays(self):
        """Return ``(keys, features, frequencies)`` aligned arrays.

        ``features`` is an ``(n, p)`` float array and ``frequencies`` an
        ``(n,)`` float array, both ordered consistently with ``keys``.
        Elements with zero-length features yield a ``(n, 0)`` feature matrix.
        """
        freq = self.empirical_frequencies()
        distinct = self.distinct_elements()
        keys = [element.key for element in distinct]
        frequencies = np.array([float(freq[key]) for key in keys])
        if distinct and len(distinct[0].features) > 0:
            features = np.array([element.feature_array() for element in distinct])
        else:
            features = np.zeros((len(distinct), 0))
        return keys, features, frequencies
