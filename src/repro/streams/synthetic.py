"""Synthetic workload generator (paper Section 6.1).

The generator is parameterized by a positive integer ``G``:

* ``G`` groups of elements of exponentially increasing sizes
  ``2^(G0+1), ..., 2^(G0+G)`` (``G0 = 2`` in the paper's experiments).
* Each group ``g`` is associated with a ``p``-dimensional Gaussian
  ``N(mu_g, I)`` whose mean is drawn uniformly from ``[-10, 10]^p``;
  each element's features are one draw from its group's Gaussian.
* Arrivals first pick a group with probability proportional to ``1/g`` and
  then an element uniformly within the group, so small groups contain the
  heavy hitters.
* When the *prefix* is generated, only a fraction ``g0`` of each group's
  elements is eligible to appear, mimicking elements that only show up later
  in the stream.
* The prefix length defaults to ``10 * 2^G`` as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.streams.stream import Element, Stream, StreamPrefix

__all__ = [
    "SyntheticConfig",
    "SyntheticGenerator",
    "DriftingZipfConfig",
    "DriftingStreamGenerator",
]


@dataclass
class SyntheticConfig:
    """Configuration of the group-structured synthetic workload.

    Attributes
    ----------
    num_groups:
        The parameter ``G`` controlling the problem size.
    smallest_group_exponent:
        The parameter ``G0``; the smallest group has ``2^(G0+1)`` elements.
    feature_dim:
        Dimension ``p`` of the Gaussian features (2 in the paper).
    fraction_seen:
        Fraction ``g0`` of each group's elements allowed to appear in the
        prefix.
    feature_box_halfwidth:
        Group means are drawn uniformly from ``[-halfwidth, halfwidth]^p``.
    seed:
        Seed for reproducibility.
    """

    num_groups: int = 6
    smallest_group_exponent: int = 2
    feature_dim: int = 2
    fraction_seen: float = 0.5
    feature_box_halfwidth: float = 10.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_groups <= 0:
            raise ValueError("num_groups must be positive")
        if self.smallest_group_exponent < 0:
            raise ValueError("smallest_group_exponent must be non-negative")
        if not 0 < self.fraction_seen <= 1:
            raise ValueError("fraction_seen must lie in (0, 1]")
        if self.feature_dim <= 0:
            raise ValueError("feature_dim must be positive")

    @property
    def group_sizes(self) -> List[int]:
        """Sizes ``2^(G0+1), ..., 2^(G0+G)`` of the element groups."""
        base = self.smallest_group_exponent
        return [2 ** (base + g) for g in range(1, self.num_groups + 1)]

    @property
    def universe_size(self) -> int:
        return sum(self.group_sizes)

    @property
    def default_prefix_length(self) -> int:
        """The paper's choice ``|S0| = 10 * 2^G``."""
        return 10 * (2 ** self.num_groups)


class SyntheticGenerator:
    """Generates element universes, prefixes and streams per Section 6.1."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._build_universe()

    # ------------------------------------------------------------------
    # universe construction
    # ------------------------------------------------------------------
    def _build_universe(self) -> None:
        cfg = self.config
        self.group_means = self._rng.uniform(
            -cfg.feature_box_halfwidth,
            cfg.feature_box_halfwidth,
            size=(cfg.num_groups, cfg.feature_dim),
        )
        self._elements: List[Element] = []
        self._group_of_key: List[int] = []
        group_slices = []
        next_key = 0
        for group_index, size in enumerate(cfg.group_sizes):
            features = self._rng.normal(
                loc=self.group_means[group_index], scale=1.0, size=(size, cfg.feature_dim)
            )
            start = next_key
            for row in features:
                self._elements.append(Element.with_features(next_key, row))
                self._group_of_key.append(group_index)
                next_key += 1
            group_slices.append((start, next_key))
        self._group_slices = group_slices
        # Group arrival probability proportional to 1/g (1-indexed groups).
        raw = np.array([1.0 / (g + 1) for g in range(cfg.num_groups)])
        self._group_probabilities = raw / raw.sum()

    @property
    def universe(self) -> List[Element]:
        """All elements of the universe, keyed ``0..|U|-1``."""
        return list(self._elements)

    @property
    def group_probabilities(self) -> np.ndarray:
        return self._group_probabilities.copy()

    def group_of(self, key: int) -> int:
        """Return the group index of an element key."""
        return self._group_of_key[key]

    def group_members(self, group_index: int) -> List[Element]:
        start, end = self._group_slices[group_index]
        return self._elements[start:end]

    # ------------------------------------------------------------------
    # stream generation
    # ------------------------------------------------------------------
    def _sample_arrivals(
        self,
        length: int,
        eligible_per_group: Sequence[np.ndarray],
    ) -> List[Element]:
        """Sample arrivals by first picking a group, then a uniform element."""
        group_draws = self._rng.choice(
            self.config.num_groups, size=length, p=self._group_probabilities
        )
        arrivals: List[Element] = []
        for group_index in group_draws:
            members = eligible_per_group[group_index]
            key = int(members[self._rng.integers(len(members))])
            arrivals.append(self._elements[key])
        return arrivals

    def _all_keys_per_group(self) -> List[np.ndarray]:
        return [
            np.arange(start, end) for start, end in self._group_slices
        ]

    def _prefix_keys_per_group(self) -> List[np.ndarray]:
        """Restrict each group to the fraction ``g0`` eligible for the prefix."""
        eligible = []
        for start, end in self._group_slices:
            keys = np.arange(start, end)
            count = max(1, int(round(self.config.fraction_seen * len(keys))))
            chosen = self._rng.choice(keys, size=count, replace=False)
            eligible.append(np.sort(chosen))
        return eligible

    def generate_prefix(self, length: Optional[int] = None) -> StreamPrefix:
        """Generate the observed prefix ``S0``.

        Only a fraction ``g0`` of each group is eligible to appear.
        """
        if length is None:
            length = self.config.default_prefix_length
        eligible = self._prefix_keys_per_group()
        self._last_prefix_eligible = eligible
        arrivals = self._sample_arrivals(length, eligible)
        return StreamPrefix(arrivals=arrivals)

    def generate_stream(self, length: int) -> Stream:
        """Generate a post-prefix stream where every element may appear."""
        arrivals = self._sample_arrivals(length, self._all_keys_per_group())
        return Stream(arrivals=arrivals)

    def generate_prefix_and_stream(
        self,
        prefix_length: Optional[int] = None,
        stream_multiplier: int = 10,
    ):
        """Generate ``(S0, S_rest)`` with ``|S_rest| = multiplier * |S0|``.

        This mirrors the paper's experiments that evaluate unseen-element
        error after ``|S| = 10 |S0|`` arrivals.
        """
        prefix = self.generate_prefix(prefix_length)
        stream = self.generate_stream(stream_multiplier * len(prefix))
        return prefix, stream


@dataclass
class DriftingZipfConfig:
    """Configuration of the piecewise-Zipf drifting workload.

    The stream is a sequence of ``num_segments`` segments of
    ``segment_length`` arrivals each.  Within a segment, arrivals are
    i.i.d. Zipf(``alpha``) over the key universe through a rank-to-key
    permutation; at every change-point (segment boundary) that permutation
    rotates by ``rotation`` positions, so the heavy hitters migrate to
    keys that were previously cold.  ``rotation`` is the drift knob: 0
    reduces to a stationary Zipf stream, ``universe_size // 2`` makes
    consecutive segments nearly disjoint in their heavy keys.

    Each element's features encode its *initial* Zipf rank (log-rank plus
    Gaussian jitter).  Features are per-element attributes and therefore
    do not move when the permutation rotates — which is exactly what makes
    this workload ground truth for drift detection: a scheme trained on
    segment 0 keeps routing by stale rank information.
    """

    universe_size: int = 1024
    alpha: float = 1.1
    segment_length: int = 10_000
    num_segments: int = 4
    rotation: Optional[int] = None
    feature_dim: int = 2
    feature_noise: float = 0.1
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.universe_size <= 1:
            raise ValueError("universe_size must exceed 1")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.segment_length <= 0:
            raise ValueError("segment_length must be positive")
        if self.num_segments <= 0:
            raise ValueError("num_segments must be positive")
        if self.rotation is not None and not (
            0 <= self.rotation < self.universe_size
        ):
            raise ValueError(
                "rotation must lie in [0, universe_size) or be None"
            )
        if self.feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if self.feature_noise < 0:
            raise ValueError("feature_noise must be non-negative")

    @property
    def effective_rotation(self) -> int:
        """The per-change-point permutation shift (default: a quarter turn)."""
        if self.rotation is not None:
            return self.rotation
        return max(1, self.universe_size // 4)

    @property
    def total_length(self) -> int:
        return self.segment_length * self.num_segments

    @property
    def change_points(self) -> List[int]:
        """Arrival indices at which the key permutation rotates."""
        return [
            self.segment_length * segment
            for segment in range(1, self.num_segments)
        ]


class DriftingStreamGenerator:
    """Piecewise-Zipf streams with rotating key permutations (ground-truth drift).

    >>> generator = DriftingStreamGenerator(DriftingZipfConfig(seed=0))
    >>> prefix = generator.generate_prefix(5_000)   # segment-0 distribution
    >>> stream = generator.generate_stream()        # all segments, in order
    >>> generator.key_probabilities(0)              # exact per-key P, segment 0
    """

    def __init__(self, config: DriftingZipfConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        size = config.universe_size
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = ranks ** (-config.alpha)
        self._rank_probabilities = weights / weights.sum()
        # rank -> key for segment 0; segment s rotates this by s * rotation.
        self._base_permutation = self._rng.permutation(size)
        rank_of_key = np.empty(size, dtype=np.int64)
        rank_of_key[self._base_permutation] = np.arange(size)
        jitter = self._rng.normal(
            0.0, config.feature_noise, size=(size, config.feature_dim)
        )
        log_rank = np.log1p(rank_of_key).reshape(size, 1)
        features = jitter + log_rank
        self._elements = [
            Element.with_features(int(key), features[key])
            for key in range(size)
        ]

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def segment_permutation(self, segment: int) -> np.ndarray:
        """The rank-to-key permutation in force during ``segment``."""
        shift = (segment * self.config.effective_rotation) % (
            self.config.universe_size
        )
        return np.roll(self._base_permutation, shift)

    def key_probabilities(self, segment: int) -> np.ndarray:
        """Exact per-key arrival probabilities during ``segment``."""
        probabilities = np.zeros(self.config.universe_size)
        probabilities[self.segment_permutation(segment)] = (
            self._rank_probabilities
        )
        return probabilities

    def segment_of_arrival(self, index: int) -> int:
        """Which segment the ``index``-th stream arrival belongs to."""
        if not 0 <= index < self.config.total_length:
            raise IndexError(
                f"arrival index must lie in [0, {self.config.total_length})"
            )
        return index // self.config.segment_length

    @property
    def universe(self) -> List[Element]:
        return list(self._elements)

    # ------------------------------------------------------------------
    # stream generation
    # ------------------------------------------------------------------
    def _sample_segment(self, segment: int, length: int) -> List[Element]:
        permutation = self.segment_permutation(segment)
        rank_draws = self._rng.choice(
            self.config.universe_size, size=length, p=self._rank_probabilities
        )
        keys = permutation[rank_draws]
        return [self._elements[key] for key in keys]

    def generate_prefix(self, length: Optional[int] = None) -> StreamPrefix:
        """An observed prefix drawn from the segment-0 distribution."""
        if length is None:
            length = self.config.segment_length
        return StreamPrefix(arrivals=self._sample_segment(0, length))

    def generate_segment(
        self, segment: int, length: Optional[int] = None
    ) -> Stream:
        """One segment's worth of arrivals under that segment's permutation."""
        if not 0 <= segment < self.config.num_segments:
            raise IndexError(
                f"segment must lie in [0, {self.config.num_segments})"
            )
        if length is None:
            length = self.config.segment_length
        return Stream(arrivals=self._sample_segment(segment, length))

    def generate_stream(self) -> Stream:
        """The full drifting stream: every segment, change-points in order."""
        arrivals: List[Element] = []
        for segment in range(self.config.num_segments):
            arrivals.extend(
                self._sample_segment(segment, self.config.segment_length)
            )
        return Stream(arrivals=arrivals)

    def generate_prefix_and_stream(self, prefix_length: Optional[int] = None):
        """``(S0, S)`` where S0 is pre-drift and S crosses every change-point."""
        return self.generate_prefix(prefix_length), self.generate_stream()
