"""repro.errors — the unified exception hierarchy.

Eight PRs grew their own error types in the modules that raised them
(``SpecError`` in the spec layer, ``SerializationError`` in the wire format,
``ProtocolError``/``ServiceError`` in the streaming service, ...).  They all
share one base here, :class:`ReproError`, so callers at a subsystem boundary
can catch everything this library raises with a single ``except ReproError``
instead of enumerating module-private classes::

    try:
        session = repro.restore(blob)
        session.ingest(keys)
    except repro.errors.ReproError as error:
        respond_with_error(error)

Every class keeps its historical builtin base (``ValueError`` /
``RuntimeError``), so existing ``except ValueError`` call sites keep
working, and every class is still re-exported from the module that
originally defined it (``repro.api.specs.SpecError``,
``repro.sketches.serialization.SerializationError``, ...) — the historical
import paths are permanent aliases of these definitions.

This module imports nothing from the rest of the package, so it is safe to
import from anywhere (including the lowest layers).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecError",
    "SerializationError",
    "IncompatibleSketchError",
    "StorageError",
    "KernelError",
    "ProtocolError",
    "ServiceError",
    "WALError",
    "WorkerDeadError",
]


class ReproError(Exception):
    """Base class of every exception this library raises deliberately.

    Catching ``ReproError`` at a service/session boundary covers malformed
    specs, corrupt buffers, incompatible merges, storage/kernel backend
    failures, wire-protocol violations, and service-side faults — without
    also swallowing genuine bugs (``KeyError``, ``AttributeError``, ...).
    """


class SpecError(ReproError, ValueError):
    """An estimator spec is malformed (unknown kind, bad parameters, ...).

    Historical home: :mod:`repro.api.specs`.
    """


class SerializationError(ReproError, ValueError):
    """A serialized buffer is corrupt, truncated, or of the wrong kind.

    Historical home: :mod:`repro.sketches.serialization`.
    """


class IncompatibleSketchError(ReproError, ValueError):
    """Two sketches cannot be merged (different shape, seeds, or hashes).

    Historical home: :mod:`repro.sketches.base`.
    """


class StorageError(ReproError, ValueError):
    """A counter-storage backend could not be allocated or attached.

    Historical home: :mod:`repro.core.storage`.
    """


class KernelError(ReproError, RuntimeError):
    """A compute-kernel backend is unknown, unavailable, or failed to load.

    Raised when an explicitly requested backend (``backend="numba"`` on a
    machine without Numba, ``backend="native"`` without a C compiler)
    cannot be provided.  ``backend="auto"`` never raises — it falls back
    to the pure-NumPy reference implementation.  Home:
    :mod:`repro.kernels`.
    """


class ProtocolError(ReproError, ValueError):
    """A streaming-service frame violates the wire protocol.

    Historical home: :mod:`repro.service.protocol`.
    """


class ServiceError(ReproError, RuntimeError):
    """The streaming service (or its client) failed at runtime.

    Historical home: :mod:`repro.service.protocol`.
    """


class WALError(ReproError, RuntimeError):
    """A write-ahead-log segment could not be appended or replayed.

    Historical home: :mod:`repro.resilience.wal`.
    """


class WorkerDeadError(ReproError, RuntimeError):
    """A shard worker process died while work was outstanding.

    Historical home: :mod:`repro.core.workers`.
    """
