"""Block coordinate descent (paper Algorithm 1).

Each outer iteration sweeps over the elements in a fresh random order; for
every element the algorithm removes it from its current bucket, evaluates the
marginal cost of placing it into every bucket (estimation plus similarity
terms, maintained incrementally by :class:`~repro.optimize.bucket_stats.BucketStats`),
and greedily re-inserts it into the cheapest one.  The sweep repeats until
the improvement of the overall objective falls below a tolerance or the
iteration budget is exhausted.

The algorithm converges to a local optimum; the paper recommends (and
:func:`block_coordinate_descent` supports) restarting it from several random
initializations and keeping the best solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.optimize.bucket_stats import BucketStats
from repro.optimize.initialization import initialize_assignment
from repro.optimize.objective import (
    BucketAssignment,
    ObjectiveValue,
    evaluate_assignment,
    validate_inputs,
)

__all__ = ["BcdResult", "block_coordinate_descent"]


@dataclass
class BcdResult:
    """Outcome of a block coordinate descent run.

    Attributes
    ----------
    assignment:
        The learned assignment of elements to buckets.
    objective:
        Final estimation / similarity / overall errors.
    iterations:
        Number of completed outer sweeps.
    converged:
        True if the improvement criterion (rather than the iteration budget)
        terminated the run.
    history:
        Overall objective value after the initialization and after each sweep.
    num_restarts:
        How many random restarts contributed to this result.
    """

    assignment: BucketAssignment
    objective: ObjectiveValue
    iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)
    num_restarts: int = 1


def _single_run(
    frequencies: np.ndarray,
    features: np.ndarray,
    num_buckets: int,
    lam: float,
    initial: BucketAssignment,
    max_iterations: int,
    tolerance: float,
    rng: np.random.Generator,
) -> BcdResult:
    """One BCD run from a given initial assignment."""
    stats = BucketStats(frequencies, features, initial)
    num_elements = len(frequencies)
    history = [stats.total_error(lam)]
    converged = False
    iterations = 0

    for _ in range(max_iterations):
        permutation = rng.permutation(num_elements)
        for element in permutation:
            element = int(element)
            stats.remove(element)
            costs = np.array(
                [stats.marginal_cost(element, bucket, lam) for bucket in range(num_buckets)]
            )
            best_bucket = int(costs.argmin())
            stats.add(element, best_bucket)
        iterations += 1
        current = stats.total_error(lam)
        history.append(current)
        if history[-2] - current < tolerance:
            converged = True
            break

    assignment = stats.to_assignment()
    objective = evaluate_assignment(frequencies, features, assignment, lam)
    return BcdResult(
        assignment=assignment,
        objective=objective,
        iterations=iterations,
        converged=converged,
        history=history,
    )


def block_coordinate_descent(
    frequencies,
    features=None,
    num_buckets: int = 10,
    lam: float = 1.0,
    max_iterations: int = 50,
    tolerance: float = 1e-9,
    initialization: str = "random",
    num_restarts: int = 1,
    initial_assignment: Optional[BucketAssignment] = None,
    random_state: Optional[int] = None,
) -> BcdResult:
    """Run Algorithm 1, optionally from multiple random restarts.

    Parameters
    ----------
    frequencies:
        Observed prefix frequencies ``f0`` of the ``n`` distinct elements.
    features:
        ``(n, p)`` feature matrix; ``None`` (or ``p = 0``) disables the
        similarity term regardless of ``lam``.
    num_buckets:
        Bucket budget ``b``.
    lam:
        Trade-off weight λ between estimation and similarity errors.
    max_iterations:
        Maximum number of outer sweeps per restart.
    tolerance:
        Stop when one sweep improves the objective by less than this.
    initialization:
        Strategy used when ``initial_assignment`` is not given: ``"random"``,
        ``"sorted"``, ``"heavy_hitter"`` or ``"dp"``.
    num_restarts:
        Number of independent runs (with fresh random initializations for
        ``"random"``); the best result is returned.
    initial_assignment:
        Explicit starting assignment, overriding ``initialization``.
    random_state:
        Seed controlling the sweep order and random initializations.

    Returns
    -------
    BcdResult
        The best run found across restarts.
    """
    frequencies, features, num_buckets, lam = validate_inputs(
        frequencies, features, num_buckets, lam
    )
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")
    if num_restarts <= 0:
        raise ValueError("num_restarts must be positive")
    rng = np.random.default_rng(random_state)

    best: Optional[BcdResult] = None
    for _ in range(num_restarts):
        if initial_assignment is not None:
            initial = initial_assignment.copy()
        else:
            initial = initialize_assignment(
                frequencies, num_buckets, strategy=initialization, rng=rng
            )
        result = _single_run(
            frequencies,
            features,
            num_buckets,
            lam,
            initial,
            max_iterations,
            tolerance,
            rng,
        )
        if best is None or result.objective.overall < best.objective.overall:
            best = result
    best.num_restarts = num_restarts
    return best
