"""Problem (1): the bucket-assignment objective.

An assignment maps each of the ``n`` prefix elements to one of ``b`` buckets
(the one-hot matrix ``Z`` of the paper, stored here as an integer label
vector).  Its quality is measured by:

* **estimation error** — ``Σ_i |f0_i − μ_{bucket(i)}|`` where ``μ_j`` is the
  mean frequency of bucket ``j`` (this is the error the learned estimator
  will make on the prefix itself);
* **similarity error** — ``Σ_j Σ_{(i,k) ∈ I_j × I_j} ‖x_i − x_k‖²``, the sum
  over *ordered* pairs of co-bucketed elements of their squared feature
  distance (this is the term that encourages feature-wise coherent buckets,
  which is what lets a classifier route unseen elements sensibly);
* **overall error** — ``λ · estimation + (1 − λ) · similarity``.

The ordered-pair convention matches the paper's formulation (``Σ_i Σ_k z_ij
z_kj ‖x_i − x_k‖²``), so each unordered pair is counted twice and ``i = k``
contributes zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "BucketAssignment",
    "ObjectiveValue",
    "estimation_error",
    "similarity_error",
    "overall_error",
    "evaluate_assignment",
    "pairwise_squared_distances",
    "validate_inputs",
]


def validate_inputs(
    frequencies: np.ndarray,
    features: Optional[np.ndarray],
    num_buckets: int,
    lam: float,
) -> tuple:
    """Validate and normalize optimizer inputs.

    Returns ``(frequencies, features, num_buckets, lam)`` with frequencies as
    a float vector and features as an ``(n, p)`` float matrix (``p`` may be 0).
    """
    frequencies = np.asarray(frequencies, dtype=float).ravel()
    if frequencies.size == 0:
        raise ValueError("frequencies must be non-empty")
    if np.any(frequencies < 0):
        raise ValueError("frequencies must be non-negative")
    if features is None:
        features = np.zeros((frequencies.size, 0))
    else:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[0] != frequencies.size:
            raise ValueError(
                "features and frequencies must describe the same elements: "
                f"{features.shape[0]} vs {frequencies.size}"
            )
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must lie in [0, 1]")
    return frequencies, features, int(num_buckets), float(lam)


@dataclass
class BucketAssignment:
    """An assignment of ``n`` elements to ``b`` buckets.

    Attributes
    ----------
    labels:
        Integer array of shape ``(n,)`` with values in ``[0, num_buckets)``.
    num_buckets:
        The bucket budget ``b``; buckets may be empty.
    """

    labels: np.ndarray
    num_buckets: int

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=int).ravel()
        if self.num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= self.num_buckets
        ):
            raise ValueError("labels must lie in [0, num_buckets)")

    @property
    def num_elements(self) -> int:
        return int(self.labels.size)

    def one_hot(self) -> np.ndarray:
        """The binary matrix ``Z`` of the paper, shape ``(n, b)``."""
        matrix = np.zeros((self.num_elements, self.num_buckets), dtype=int)
        matrix[np.arange(self.num_elements), self.labels] = 1
        return matrix

    @classmethod
    def from_one_hot(cls, Z: np.ndarray) -> "BucketAssignment":
        """Build an assignment from a one-hot matrix."""
        Z = np.asarray(Z)
        if Z.ndim != 2:
            raise ValueError("Z must be a 2-D matrix")
        if not np.all(Z.sum(axis=1) == 1):
            raise ValueError("each row of Z must have exactly one nonzero entry")
        return cls(labels=Z.argmax(axis=1), num_buckets=Z.shape[1])

    def bucket_members(self, bucket: int) -> np.ndarray:
        """Indices of elements assigned to ``bucket``."""
        return np.flatnonzero(self.labels == bucket)

    def bucket_sizes(self) -> np.ndarray:
        """Number of elements per bucket, shape ``(b,)``."""
        return np.bincount(self.labels, minlength=self.num_buckets)

    def bucket_means(self, frequencies: np.ndarray) -> np.ndarray:
        """Mean frequency per bucket (0 for empty buckets)."""
        frequencies = np.asarray(frequencies, dtype=float)
        sums = np.bincount(self.labels, weights=frequencies, minlength=self.num_buckets)
        counts = self.bucket_sizes()
        means = np.zeros(self.num_buckets)
        nonempty = counts > 0
        means[nonempty] = sums[nonempty] / counts[nonempty]
        return means

    def copy(self) -> "BucketAssignment":
        return BucketAssignment(labels=self.labels.copy(), num_buckets=self.num_buckets)


@dataclass(frozen=True)
class ObjectiveValue:
    """The three error terms of Problem (1) for a fixed assignment."""

    estimation: float
    similarity: float
    lam: float

    @property
    def overall(self) -> float:
        return self.lam * self.estimation + (1.0 - self.lam) * self.similarity


def pairwise_squared_distances(features: np.ndarray) -> np.ndarray:
    """Dense matrix of squared Euclidean distances between feature rows."""
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features.reshape(-1, 1)
    squared_norms = (features**2).sum(axis=1)
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * features @ features.T
    np.maximum(distances, 0.0, out=distances)
    return distances


def estimation_error(
    frequencies: np.ndarray, assignment: BucketAssignment, per_element: bool = False
) -> float:
    """Σ_i |f0_i − μ_{bucket(i)}| (optionally divided by ``n``)."""
    frequencies = np.asarray(frequencies, dtype=float)
    means = assignment.bucket_means(frequencies)
    total = float(np.abs(frequencies - means[assignment.labels]).sum())
    if per_element:
        return total / max(1, assignment.num_elements)
    return total


def similarity_error(
    features: np.ndarray, assignment: BucketAssignment, per_pair: bool = False
) -> float:
    """Σ_j Σ_{(i,k) ∈ I_j × I_j} ‖x_i − x_k‖² over ordered pairs.

    Computed per bucket via the identity
    ``Σ_{i,k} ‖x_i − x_k‖² = 2·m·Σ_i ‖x_i‖² − 2·‖Σ_i x_i‖²`` so no pairwise
    matrix is materialized.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        features = features.reshape(-1, 1)
    if features.shape[1] == 0:
        return 0.0
    total = 0.0
    num_pairs = 0
    for bucket in range(assignment.num_buckets):
        members = assignment.bucket_members(bucket)
        if members.size == 0:
            continue
        block = features[members]
        sum_vector = block.sum(axis=0)
        sum_squares = float((block**2).sum())
        bucket_total = 2.0 * members.size * sum_squares - 2.0 * float(sum_vector @ sum_vector)
        # Guard against tiny negative values from floating-point cancellation.
        total += max(bucket_total, 0.0)
        num_pairs += members.size * members.size
    if per_pair:
        return total / max(1, num_pairs)
    return float(total)


def overall_error(
    frequencies: np.ndarray,
    features: np.ndarray,
    assignment: BucketAssignment,
    lam: float,
) -> float:
    """The Problem (1) objective ``λ·estimation + (1−λ)·similarity``."""
    value = evaluate_assignment(frequencies, features, assignment, lam)
    return value.overall


def evaluate_assignment(
    frequencies: np.ndarray,
    features: Optional[np.ndarray],
    assignment: BucketAssignment,
    lam: float,
) -> ObjectiveValue:
    """Evaluate all error terms of an assignment."""
    frequencies, features, _, lam = validate_inputs(
        frequencies, features, assignment.num_buckets, lam
    )
    if frequencies.size != assignment.num_elements:
        raise ValueError("assignment and frequencies describe different element counts")
    return ObjectiveValue(
        estimation=estimation_error(frequencies, assignment),
        similarity=similarity_error(features, assignment),
        lam=lam,
    )
