"""Learning the optimal hashing scheme (paper Section 4).

Given the empirical frequencies ``f0`` and features ``x`` of the ``n``
distinct prefix elements and a bucket budget ``b``, the optimizers in this
subpackage compute an assignment of elements to buckets minimizing the
Problem (1) objective — a convex combination (weight ``λ``) of the
*estimation error* (per-bucket absolute deviation from the bucket mean) and
the *similarity error* (per-bucket pairwise squared feature distances).

Three solvers are provided, mirroring the paper:

* :func:`~repro.optimize.bcd.block_coordinate_descent` — Algorithm 1, the
  practical workhorse.
* :class:`~repro.optimize.milp.MilpModel` /
  :func:`~repro.optimize.milp.solve_milp` — the exact mixed-integer linear
  reformulation of Theorem 1, solved by a pure-Python branch-and-bound on
  top of scipy's LP solver (substituting for Gurobi).
* :func:`~repro.optimize.dp.dynamic_programming` — the λ=1 special case
  solved exactly as a 1-D clustering problem, in O(n²b) or in O(nb) with
  SMAWK matrix searching.

All solvers return a :class:`~repro.optimize.objective.BucketAssignment`.
"""

from repro.optimize.objective import (
    BucketAssignment,
    ObjectiveValue,
    estimation_error,
    similarity_error,
    overall_error,
    evaluate_assignment,
    pairwise_squared_distances,
)
from repro.optimize.bucket_stats import BucketStats
from repro.optimize.initialization import (
    initialize_assignment,
    random_assignment,
    sorted_assignment,
    heavy_hitter_assignment,
)
from repro.optimize.bcd import BcdResult, block_coordinate_descent
from repro.optimize.dp import dynamic_programming, cluster_cost_matrix
from repro.optimize.smawk import smawk_row_minima
from repro.optimize.milp import MilpModel, MilpResult, solve_milp, solve_exact_enumeration
from repro.optimize.solvers import learn_hashing_scheme

__all__ = [
    "BucketAssignment",
    "ObjectiveValue",
    "estimation_error",
    "similarity_error",
    "overall_error",
    "evaluate_assignment",
    "pairwise_squared_distances",
    "BucketStats",
    "initialize_assignment",
    "random_assignment",
    "sorted_assignment",
    "heavy_hitter_assignment",
    "BcdResult",
    "block_coordinate_descent",
    "dynamic_programming",
    "cluster_cost_matrix",
    "smawk_row_minima",
    "MilpModel",
    "MilpResult",
    "solve_milp",
    "solve_exact_enumeration",
    "learn_hashing_scheme",
]
