"""Unified entry point for the three hashing-scheme solvers.

The experiments switch between ``milp``, ``bcd`` and ``dp`` by name; this
module provides that dispatch so the core estimator and the benchmark
harness do not need to know each solver's individual signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.optimize.bcd import block_coordinate_descent
from repro.optimize.dp import dynamic_programming
from repro.optimize.milp import solve_milp
from repro.optimize.objective import (
    BucketAssignment,
    ObjectiveValue,
    evaluate_assignment,
    validate_inputs,
)

__all__ = ["SolverResult", "learn_hashing_scheme"]


@dataclass
class SolverResult:
    """Solver-agnostic result: the assignment, its errors, and metadata."""

    assignment: BucketAssignment
    objective: ObjectiveValue
    solver: str
    details: object = None


def learn_hashing_scheme(
    frequencies,
    features=None,
    num_buckets: int = 10,
    lam: float = 1.0,
    solver: str = "bcd",
    random_state: Optional[int] = None,
    **solver_options,
) -> SolverResult:
    """Learn a bucket assignment with the named solver.

    Parameters
    ----------
    frequencies, features, num_buckets, lam:
        The Problem (1) data (see :mod:`repro.optimize.objective`).
    solver:
        ``"bcd"`` (Algorithm 1), ``"dp"`` (exact λ=1 dynamic program — the λ
        value is ignored by the solver, exactly as in the paper's
        experiments), or ``"milp"`` (exact branch-and-bound, small instances
        only).
    random_state:
        Seed forwarded to stochastic solvers.
    solver_options:
        Extra keyword arguments forwarded to the underlying solver, e.g.
        ``num_restarts`` for bcd or ``time_limit`` for milp.
    """
    frequencies, features, num_buckets, lam = validate_inputs(
        frequencies, features, num_buckets, lam
    )
    if solver == "bcd":
        result = block_coordinate_descent(
            frequencies,
            features,
            num_buckets=num_buckets,
            lam=lam,
            random_state=random_state,
            **solver_options,
        )
        return SolverResult(
            assignment=result.assignment,
            objective=result.objective,
            solver="bcd",
            details=result,
        )
    if solver == "dp":
        result = dynamic_programming(frequencies, num_buckets, **solver_options)
        objective = evaluate_assignment(frequencies, features, result.assignment, lam)
        return SolverResult(
            assignment=result.assignment,
            objective=objective,
            solver="dp",
            details=result,
        )
    if solver == "milp":
        result = solve_milp(
            frequencies,
            features,
            num_buckets=num_buckets,
            lam=lam,
            random_state=random_state,
            **solver_options,
        )
        return SolverResult(
            assignment=result.assignment,
            objective=result.objective,
            solver="milp",
            details=result,
        )
    raise ValueError(f"unknown solver '{solver}'; expected 'bcd', 'dp' or 'milp'")
