"""Initialization strategies for the block coordinate descent.

Section 4.3 discusses three ways of seeding Algorithm 1, and Section 4.4
adds a fourth (the λ=1 dynamic program as a warm start):

* ``random`` — each element is assigned to a uniformly random bucket;
* ``sorted`` — elements are sorted by observed frequency and chopped into
  ``b`` equally sized consecutive buckets;
* ``heavy_hitter`` — the ``b − 1`` most frequent elements get their own
  bucket and everything else is assigned randomly to the remaining bucket(s);
* ``dp`` — the exact λ=1 solution (imported lazily to avoid a cycle).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.optimize.objective import BucketAssignment

__all__ = [
    "random_assignment",
    "sorted_assignment",
    "heavy_hitter_assignment",
    "initialize_assignment",
]


def random_assignment(
    num_elements: int, num_buckets: int, rng: Optional[np.random.Generator] = None
) -> BucketAssignment:
    """Assign each element to a uniformly random bucket."""
    if num_elements <= 0:
        raise ValueError("num_elements must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    labels = rng.integers(0, num_buckets, size=num_elements)
    return BucketAssignment(labels=labels, num_buckets=num_buckets)


def sorted_assignment(frequencies: np.ndarray, num_buckets: int) -> BucketAssignment:
    """Sort by frequency and cut into ``b`` consecutive, equally sized buckets."""
    frequencies = np.asarray(frequencies, dtype=float)
    order = np.argsort(frequencies, kind="stable")
    labels = np.zeros(len(frequencies), dtype=int)
    chunks = np.array_split(order, num_buckets)
    for bucket, chunk in enumerate(chunks):
        labels[chunk] = bucket
    return BucketAssignment(labels=labels, num_buckets=num_buckets)


def heavy_hitter_assignment(
    frequencies: np.ndarray,
    num_buckets: int,
    rng: Optional[np.random.Generator] = None,
) -> BucketAssignment:
    """Give the top ``b − 1`` elements their own bucket; the rest share bucket 0.

    This mirrors the Learned CMS heuristic the paper contrasts against: heavy
    hitters isolated, the tail lumped together.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    rng = rng if rng is not None else np.random.default_rng()
    labels = np.zeros(len(frequencies), dtype=int)
    num_heavy = min(num_buckets - 1, len(frequencies))
    if num_heavy > 0:
        heavy = np.argsort(frequencies)[::-1][:num_heavy]
        labels[heavy] = np.arange(1, num_heavy + 1)
    return BucketAssignment(labels=labels, num_buckets=num_buckets)


def initialize_assignment(
    frequencies: np.ndarray,
    num_buckets: int,
    strategy: str = "random",
    rng: Optional[np.random.Generator] = None,
) -> BucketAssignment:
    """Build an initial assignment using one of the named strategies.

    ``strategy`` is one of ``"random"``, ``"sorted"``, ``"heavy_hitter"``,
    ``"dp"``.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if strategy == "random":
        return random_assignment(len(frequencies), num_buckets, rng=rng)
    if strategy == "sorted":
        return sorted_assignment(frequencies, num_buckets)
    if strategy == "heavy_hitter":
        return heavy_hitter_assignment(frequencies, num_buckets, rng=rng)
    if strategy == "dp":
        # Imported here to avoid a circular import at module load time.
        from repro.optimize.dp import dynamic_programming

        return dynamic_programming(frequencies, num_buckets).assignment
    raise ValueError(
        f"unknown initialization strategy '{strategy}'; expected one of "
        "'random', 'sorted', 'heavy_hitter', 'dp'"
    )
