"""SMAWK: row minima of totally monotone matrices in linear time.

The λ=1 special case of the hashing problem is a 1-D clustering problem whose
dynamic program can be accelerated from O(n²b) to O(nb) with the matrix
searching technique of Wu (1991) / Aggarwal et al. (1987).  The key primitive
is SMAWK: given an ``n × m`` *totally monotone* matrix (every 2×2 submatrix
is monotone — if the top row strictly prefers the right column, so does the
bottom row), it finds the column index of each row's minimum using only
O(n + m) matrix entry evaluations.

The matrix is supplied implicitly as a callable ``lookup(row, col)`` so the
DP never materializes the O(n²) cost matrix.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

__all__ = ["smawk_row_minima"]


def smawk_row_minima(
    num_rows: int,
    num_cols: int,
    lookup: Callable[[int, int], float],
) -> List[int]:
    """Return, for every row, the index of the leftmost minimal column.

    Parameters
    ----------
    num_rows, num_cols:
        Dimensions of the implicit matrix.
    lookup:
        Callable returning the matrix entry at ``(row, col)``.

    The matrix must be totally monotone; otherwise the result is undefined.
    """
    if num_rows <= 0 or num_cols <= 0:
        raise ValueError("matrix dimensions must be positive")
    result = [0] * num_rows
    _solve(list(range(num_rows)), list(range(num_cols)), lookup, result)
    return result


def _reduce(rows: Sequence[int], cols: Sequence[int], lookup, ) -> List[int]:
    """REDUCE step: prune columns that cannot hold any row minimum.

    Keeps at most ``len(rows)`` columns while preserving every row's leftmost
    minimum.
    """
    surviving: List[int] = []
    for col in cols:
        while surviving:
            row = rows[len(surviving) - 1]
            if lookup(row, surviving[-1]) <= lookup(row, col):
                break
            surviving.pop()
        if len(surviving) < len(rows):
            surviving.append(col)
    return surviving


def _solve(rows: List[int], cols: List[int], lookup, result: List[int]) -> None:
    """Recursive SMAWK on the submatrix indexed by ``rows`` × ``cols``."""
    if not rows:
        return
    cols = _reduce(rows, cols, lookup)

    # Recurse on every other row (positions 1, 3, 5, ...).
    _solve(rows[1::2], cols, lookup, result)

    # Fill in the remaining rows (positions 0, 2, 4, ...) by scanning between
    # the neighbouring solved rows' minima (monotonicity bounds the window).
    col_positions = {col: position for position, col in enumerate(cols)}
    for index in range(0, len(rows), 2):
        row = rows[index]
        start_position = 0
        if index > 0:
            start_position = col_positions[result[rows[index - 1]]]
        if index + 1 < len(rows):
            end_position = col_positions[result[rows[index + 1]]]
        else:
            end_position = len(cols) - 1
        best_col = cols[start_position]
        best_value = lookup(row, best_col)
        for position in range(start_position + 1, end_position + 1):
            col = cols[position]
            value = lookup(row, col)
            if value < best_value:
                best_value = value
                best_col = col
        result[row] = best_col
