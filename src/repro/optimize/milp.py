"""Exact mixed-integer linear reformulation (paper Theorem 1 / Problem (2)).

Problem (1) is a nonlinear binary program; Theorem 1 linearizes it by
introducing, per (element ``i``, element ``k``, bucket ``j``):

* ``e_ij ≥ 0`` — the absolute estimation error of mapping ``i`` to ``j``;
* ``θ_ikj = e_ij · z_kj`` — linearized with a big-M;
* ``δ_ikj = z_ij · z_kj`` — linearized with the standard product constraints.

The resulting MILP has ``O(n²b)`` variables and constraints.  The paper
solves it with Gurobi; this module provides the same model (so Theorem 1 can
be validated mechanically) plus a pure-Python branch-and-bound solver whose
LP relaxations are handled by ``scipy.optimize.linprog`` (HiGHS).  It is
intended for the small instances the paper itself uses the MILP on; the
block coordinate descent remains the scalable solver.

For very small instances :func:`solve_exact_enumeration` finds the global
optimum of Problem (1) by exhaustive search, which the tests use as an
independent ground truth for both the MILP and the dynamic program.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.optimize.bcd import block_coordinate_descent
from repro.optimize.objective import (
    BucketAssignment,
    ObjectiveValue,
    evaluate_assignment,
    pairwise_squared_distances,
    validate_inputs,
)

__all__ = ["MilpModel", "MilpResult", "solve_milp", "solve_exact_enumeration"]


class MilpModel:
    """The Problem (2) model in standard sparse LP form.

    Variable layout (all flattened into one vector, in this order):

    * ``z``     — ``n·b`` binaries (relaxed to [0, 1] in LP relaxations);
    * ``e``     — ``n·b`` non-negative continuous;
    * ``theta`` — ``n·n·b`` non-negative continuous;
    * ``delta`` — ``n·n·b`` continuous in [0, 1].
    """

    def __init__(self, frequencies, features, num_buckets: int, lam: float) -> None:
        frequencies, features, num_buckets, lam = validate_inputs(
            frequencies, features, num_buckets, lam
        )
        self.frequencies = frequencies
        self.features = features
        self.num_buckets = num_buckets
        self.lam = lam
        self.num_elements = len(frequencies)
        self.big_m = float(max(frequencies.max(), 1.0))
        self._distances = (
            pairwise_squared_distances(features)
            if features.shape[1] > 0
            else np.zeros((self.num_elements, self.num_elements))
        )
        self._build()

    # ------------------------------------------------------------------
    # variable indexing
    # ------------------------------------------------------------------
    def z_index(self, i: int, j: int) -> int:
        return i * self.num_buckets + j

    def e_index(self, i: int, j: int) -> int:
        return self.num_z + i * self.num_buckets + j

    def theta_index(self, i: int, k: int, j: int) -> int:
        return (
            self.num_z
            + self.num_e
            + (i * self.num_elements + k) * self.num_buckets
            + j
        )

    def delta_index(self, i: int, k: int, j: int) -> int:
        return (
            self.num_z
            + self.num_e
            + self.num_theta
            + (i * self.num_elements + k) * self.num_buckets
            + j
        )

    @property
    def num_z(self) -> int:
        return self.num_elements * self.num_buckets

    @property
    def num_e(self) -> int:
        return self.num_elements * self.num_buckets

    @property
    def num_theta(self) -> int:
        return self.num_elements * self.num_elements * self.num_buckets

    @property
    def num_delta(self) -> int:
        return self.num_elements * self.num_elements * self.num_buckets

    @property
    def num_variables(self) -> int:
        return self.num_z + self.num_e + self.num_theta + self.num_delta

    # ------------------------------------------------------------------
    # model construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        n, b, M = self.num_elements, self.num_buckets, self.big_m
        f = self.frequencies

        # Objective: λ Σ_{i,j} θ_iij + (1−λ) Σ_{i,k,j} δ_ikj ‖x_i − x_k‖².
        cost = np.zeros(self.num_variables)
        for i in range(n):
            for j in range(b):
                cost[self.theta_index(i, i, j)] += self.lam
        if self.lam < 1.0:
            for i in range(n):
                for k in range(n):
                    distance = self._distances[i, k]
                    if distance == 0.0:
                        continue
                    for j in range(b):
                        cost[self.delta_index(i, k, j)] += (1.0 - self.lam) * distance
        self.cost = cost

        # Equality constraints: Σ_j z_ij = 1.
        eq_rows, eq_cols, eq_vals = [], [], []
        for i in range(n):
            for j in range(b):
                eq_rows.append(i)
                eq_cols.append(self.z_index(i, j))
                eq_vals.append(1.0)
        self.A_eq = sparse.csr_matrix(
            (eq_vals, (eq_rows, eq_cols)), shape=(n, self.num_variables)
        )
        self.b_eq = np.ones(n)

        # Inequality constraints in A_ub x <= b_ub form.
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        rhs: List[float] = []
        row = 0

        def add_entry(col: int, val: float) -> None:
            rows.append(row)
            cols.append(col)
            vals.append(val)

        for i in range(n):
            for j in range(b):
                # (2a)  f_i Σ_k z_kj − Σ_k f_k z_kj − Σ_k θ_ikj ≤ 0
                for k in range(n):
                    add_entry(self.z_index(k, j), f[i] - f[k])
                    add_entry(self.theta_index(i, k, j), -1.0)
                rhs.append(0.0)
                row += 1
                # (2b)  −f_i Σ_k z_kj + Σ_k f_k z_kj − Σ_k θ_ikj ≤ 0
                for k in range(n):
                    add_entry(self.z_index(k, j), f[k] - f[i])
                    add_entry(self.theta_index(i, k, j), -1.0)
                rhs.append(0.0)
                row += 1

        for i in range(n):
            for k in range(n):
                for j in range(b):
                    theta = self.theta_index(i, k, j)
                    e_var = self.e_index(i, j)
                    z_kj = self.z_index(k, j)
                    z_ij = self.z_index(i, j)
                    delta = self.delta_index(i, k, j)
                    # θ_ikj ≥ e_ij − M(1 − z_kj)  ⇔  e_ij − θ_ikj + M z_kj ≤ M
                    add_entry(e_var, 1.0)
                    add_entry(theta, -1.0)
                    add_entry(z_kj, M)
                    rhs.append(M)
                    row += 1
                    # θ_ikj ≤ e_ij
                    add_entry(theta, 1.0)
                    add_entry(e_var, -1.0)
                    rhs.append(0.0)
                    row += 1
                    # θ_ikj ≤ M z_kj
                    add_entry(theta, 1.0)
                    add_entry(z_kj, -M)
                    rhs.append(0.0)
                    row += 1
                    # δ_ikj ≥ z_ij + z_kj − 1
                    add_entry(z_ij, 1.0)
                    add_entry(z_kj, 1.0)
                    add_entry(delta, -1.0)
                    rhs.append(1.0)
                    row += 1
                    # δ_ikj ≤ z_ij
                    add_entry(delta, 1.0)
                    add_entry(z_ij, -1.0)
                    rhs.append(0.0)
                    row += 1
                    # δ_ikj ≤ z_kj
                    add_entry(delta, 1.0)
                    add_entry(z_kj, -1.0)
                    rhs.append(0.0)
                    row += 1

        self.A_ub = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row, self.num_variables)
        )
        self.b_ub = np.array(rhs)

        # Variable bounds: z and δ in [0, 1]; e and θ in [0, M·n] (loose).
        upper = np.full(self.num_variables, None, dtype=object)
        lower = np.zeros(self.num_variables)
        for index in range(self.num_z):
            upper[index] = 1.0
        for index in range(self.num_z + self.num_e + self.num_theta, self.num_variables):
            upper[index] = 1.0
        self.default_bounds = [
            (float(lower[index]), None if upper[index] is None else float(upper[index]))
            for index in range(self.num_variables)
        ]

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------
    def objective_of_assignment(self, assignment: BucketAssignment) -> float:
        """Problem (1) objective of an integral assignment (for incumbents)."""
        value = evaluate_assignment(
            self.frequencies, self.features, assignment, self.lam
        )
        return value.overall

    def solve_relaxation(self, fixed: Dict[int, float]):
        """Solve the LP relaxation with some z variables fixed (by index).

        Returns the scipy ``OptimizeResult``.
        """
        bounds = list(self.default_bounds)
        for index, value in fixed.items():
            bounds[index] = (value, value)
        return linprog(
            c=self.cost,
            A_ub=self.A_ub,
            b_ub=self.b_ub,
            A_eq=self.A_eq,
            b_eq=self.b_eq,
            bounds=bounds,
            method="highs",
        )

    def extract_assignment(self, solution: np.ndarray) -> BucketAssignment:
        """Round the z block of an LP solution to a feasible assignment."""
        z = solution[: self.num_z].reshape(self.num_elements, self.num_buckets)
        return BucketAssignment(labels=z.argmax(axis=1), num_buckets=self.num_buckets)


@dataclass
class MilpResult:
    """Outcome of the branch-and-bound solve."""

    assignment: BucketAssignment
    objective: ObjectiveValue
    lower_bound: float
    num_nodes: int
    status: str
    elapsed_seconds: float
    gap: float = field(init=False)

    def __post_init__(self) -> None:
        upper = self.objective.overall
        if upper <= 0:
            self.gap = 0.0 if self.lower_bound <= upper + 1e-9 else float("inf")
        else:
            self.gap = max(0.0, (upper - self.lower_bound) / upper)


@dataclass(order=True)
class _Node:
    bound: float
    order: int
    fixed: Dict[int, float] = field(compare=False)


def solve_milp(
    frequencies,
    features=None,
    num_buckets: int = 3,
    lam: float = 1.0,
    time_limit: float = 60.0,
    node_limit: int = 2000,
    integrality_tolerance: float = 1e-6,
    gap_tolerance: float = 1e-6,
    warm_start: bool = True,
    random_state: Optional[int] = None,
) -> MilpResult:
    """Solve Problem (2) by LP-based branch-and-bound.

    A BCD warm start provides the initial incumbent (as the paper suggests),
    best-bound node selection drives the search, and branching is on the most
    fractional assignment variable.  Returns the best assignment found along
    with the certified lower bound; ``status`` is ``"optimal"`` when the gap
    closed within the limits, ``"feasible"`` otherwise.
    """
    model = MilpModel(frequencies, features, num_buckets, lam)
    start_time = time.monotonic()

    if warm_start:
        warm = block_coordinate_descent(
            model.frequencies,
            model.features,
            num_buckets=model.num_buckets,
            lam=model.lam,
            random_state=random_state,
        )
        incumbent_assignment = warm.assignment
        incumbent_value = warm.objective.overall
    else:
        incumbent_assignment = BucketAssignment(
            labels=np.zeros(model.num_elements, dtype=int), num_buckets=model.num_buckets
        )
        incumbent_value = model.objective_of_assignment(incumbent_assignment)

    root = model.solve_relaxation({})
    if not root.success:
        raise RuntimeError(f"root LP relaxation failed: {root.message}")

    counter = itertools.count()
    heap: List[_Node] = [_Node(bound=float(root.fun), order=next(counter), fixed={})]
    best_bound = float(root.fun)
    num_nodes = 0
    status = "feasible"

    while heap:
        if time.monotonic() - start_time > time_limit or num_nodes >= node_limit:
            break
        node = heapq.heappop(heap)
        best_bound = node.bound
        if node.bound >= incumbent_value - gap_tolerance * max(1.0, abs(incumbent_value)):
            # Best remaining bound cannot improve the incumbent: optimal.
            best_bound = min(best_bound, incumbent_value)
            status = "optimal"
            break

        relaxation = model.solve_relaxation(node.fixed)
        num_nodes += 1
        if not relaxation.success:
            continue  # infeasible subproblem
        bound = float(relaxation.fun)
        if bound >= incumbent_value - gap_tolerance * max(1.0, abs(incumbent_value)):
            continue

        z_values = relaxation.x[: model.num_z]
        fractional = np.abs(z_values - np.round(z_values))
        most_fractional = int(np.argmax(fractional))
        if fractional[most_fractional] <= integrality_tolerance:
            # Integral z: candidate incumbent.
            assignment = model.extract_assignment(relaxation.x)
            value = model.objective_of_assignment(assignment)
            if value < incumbent_value - 1e-12:
                incumbent_value = value
                incumbent_assignment = assignment
            continue

        for branch_value in (0.0, 1.0):
            fixed = dict(node.fixed)
            fixed[most_fractional] = branch_value
            heapq.heappush(heap, _Node(bound=bound, order=next(counter), fixed=fixed))

    if not heap and status != "optimal":
        # The tree was exhausted: the incumbent is optimal.
        best_bound = incumbent_value
        status = "optimal"

    objective = evaluate_assignment(
        model.frequencies, model.features, incumbent_assignment, model.lam
    )
    return MilpResult(
        assignment=incumbent_assignment,
        objective=objective,
        lower_bound=min(best_bound, objective.overall),
        num_nodes=num_nodes,
        status=status,
        elapsed_seconds=time.monotonic() - start_time,
    )


def solve_exact_enumeration(
    frequencies,
    features=None,
    num_buckets: int = 3,
    lam: float = 1.0,
    max_elements: int = 12,
) -> Tuple[BucketAssignment, float]:
    """Globally optimal assignment by exhaustive enumeration (tiny inputs only).

    Enumerates all ``b^n`` labelings, so it refuses inputs with more than
    ``max_elements`` elements.  Used as the independent ground truth in tests.
    """
    frequencies, features, num_buckets, lam = validate_inputs(
        frequencies, features, num_buckets, lam
    )
    n = len(frequencies)
    if n > max_elements:
        raise ValueError(
            f"exhaustive enumeration limited to {max_elements} elements, got {n}"
        )
    best_assignment: Optional[BucketAssignment] = None
    best_value = float("inf")
    for labels in itertools.product(range(num_buckets), repeat=n):
        assignment = BucketAssignment(labels=np.array(labels), num_buckets=num_buckets)
        value = evaluate_assignment(frequencies, features, assignment, lam).overall
        if value < best_value - 1e-15:
            best_value = value
            best_assignment = assignment
    return best_assignment, best_value
