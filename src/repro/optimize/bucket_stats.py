"""Incremental per-bucket statistics for the block coordinate descent.

Algorithm 1 repeatedly asks "what would bucket ``j``'s error be with / without
element ``i``?".  Answering from scratch would make every sweep quadratic in
the bucket sizes, so — exactly as the paper describes in Section 4.3 — we
maintain, per bucket:

* the member set ``I_j``, its cardinality ``c_j`` and mean frequency ``μ_j``;
* the frequency sum (so the mean updates in O(1));
* the feature sum ``Σ x_i`` and squared-norm sum ``Σ ‖x_i‖²`` (so the
  similarity error updates in O(p));
* the current estimation error ``e_j`` and similarity error ``s_j``.

The estimation error of a hypothetical membership change still needs one pass
over the bucket's members (the mean shifts), which matches the per-iteration
complexity the paper reports.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.optimize.objective import BucketAssignment

__all__ = ["BucketStats"]


class BucketStats:
    """Mutable per-bucket statistics backing Algorithm 1.

    Parameters
    ----------
    frequencies:
        Observed prefix frequencies ``f0`` of the ``n`` elements.
    features:
        ``(n, p)`` feature matrix (``p`` may be 0, in which case all
        similarity terms are 0).
    assignment:
        Initial assignment; the stats are built from it and then kept in sync
        through :meth:`remove` / :meth:`add`.
    """

    def __init__(
        self,
        frequencies: np.ndarray,
        features: np.ndarray,
        assignment: BucketAssignment,
    ) -> None:
        self.frequencies = np.asarray(frequencies, dtype=float)
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        self.features = features
        self.num_buckets = assignment.num_buckets
        self.num_elements = assignment.num_elements
        self._feature_dim = features.shape[1]
        self._squared_norms = (
            (features**2).sum(axis=1) if self._feature_dim else np.zeros(self.num_elements)
        )

        self.members: List[Set[int]] = [set() for _ in range(self.num_buckets)]
        self.counts = np.zeros(self.num_buckets, dtype=int)
        self.freq_sums = np.zeros(self.num_buckets)
        self.feature_sums = np.zeros((self.num_buckets, self._feature_dim))
        self.sqnorm_sums = np.zeros(self.num_buckets)
        self.estimation_errors = np.zeros(self.num_buckets)
        self.similarity_errors = np.zeros(self.num_buckets)
        self.labels = assignment.labels.copy()

        for element, bucket in enumerate(self.labels):
            self._insert_raw(int(element), int(bucket))
        for bucket in range(self.num_buckets):
            self.estimation_errors[bucket] = self._recompute_estimation(bucket)
            self.similarity_errors[bucket] = self._similarity_from_sums(bucket)

    # ------------------------------------------------------------------
    # raw bookkeeping
    # ------------------------------------------------------------------
    def _insert_raw(self, element: int, bucket: int) -> None:
        self.members[bucket].add(element)
        self.counts[bucket] += 1
        self.freq_sums[bucket] += self.frequencies[element]
        if self._feature_dim:
            self.feature_sums[bucket] += self.features[element]
            self.sqnorm_sums[bucket] += self._squared_norms[element]

    def _remove_raw(self, element: int, bucket: int) -> None:
        self.members[bucket].remove(element)
        self.counts[bucket] -= 1
        self.freq_sums[bucket] -= self.frequencies[element]
        if self._feature_dim:
            self.feature_sums[bucket] -= self.features[element]
            self.sqnorm_sums[bucket] -= self._squared_norms[element]

    def _similarity_from_sums(self, bucket: int) -> float:
        """Ordered-pair similarity error of a bucket from its running sums."""
        if not self._feature_dim:
            return 0.0
        count = self.counts[bucket]
        if count <= 1:
            return 0.0
        sum_vector = self.feature_sums[bucket]
        value = 2.0 * count * self.sqnorm_sums[bucket] - 2.0 * float(sum_vector @ sum_vector)
        # Guard against tiny negative values from floating-point cancellation.
        return max(float(value), 0.0)

    def _recompute_estimation(self, bucket: int) -> float:
        count = self.counts[bucket]
        if count == 0:
            return 0.0
        member_indices = np.fromiter(self.members[bucket], dtype=int, count=count)
        mean = self.freq_sums[bucket] / count
        return float(np.abs(self.frequencies[member_indices] - mean).sum())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def mean(self, bucket: int) -> float:
        """Current mean frequency of a bucket (0 if empty)."""
        count = self.counts[bucket]
        return float(self.freq_sums[bucket] / count) if count else 0.0

    def bucket_error(self, bucket: int, lam: float) -> float:
        """λ·e_j + (1−λ)·s_j for the current contents of ``bucket``."""
        return lam * self.estimation_errors[bucket] + (1.0 - lam) * self.similarity_errors[bucket]

    def total_error(self, lam: float) -> float:
        """The Problem (1) objective of the current assignment."""
        return float(
            lam * self.estimation_errors.sum() + (1.0 - lam) * self.similarity_errors.sum()
        )

    def estimation_error_with(self, element: int, bucket: int) -> float:
        """Estimation error of ``bucket`` if ``element`` were added to it.

        ``element`` must not currently be a member of ``bucket``.
        """
        count = self.counts[bucket]
        new_mean = (self.freq_sums[bucket] + self.frequencies[element]) / (count + 1)
        if count == 0:
            return abs(self.frequencies[element] - new_mean)
        member_indices = np.fromiter(self.members[bucket], dtype=int, count=count)
        error = float(np.abs(self.frequencies[member_indices] - new_mean).sum())
        return error + abs(self.frequencies[element] - new_mean)

    def similarity_error_with(self, element: int, bucket: int) -> float:
        """Similarity error of ``bucket`` if ``element`` were added to it."""
        if not self._feature_dim:
            return 0.0
        count = self.counts[bucket]
        new_count = count + 1
        new_sum = self.feature_sums[bucket] + self.features[element]
        new_sqnorm = self.sqnorm_sums[bucket] + self._squared_norms[element]
        if new_count <= 1:
            return 0.0
        value = 2.0 * new_count * new_sqnorm - 2.0 * float(new_sum @ new_sum)
        return max(float(value), 0.0)

    def marginal_cost(self, element: int, bucket: int, lam: float) -> float:
        """Increase of the objective caused by adding ``element`` to ``bucket``.

        The element must currently be unassigned (removed from its bucket).
        Choosing the bucket with minimal marginal cost is equivalent to
        Algorithm 1's ``argmin_j ε_{σi,j} + Σ_{ℓ≠j} ε_{−σi,ℓ}``.
        """
        estimation_delta = (
            self.estimation_error_with(element, bucket) - self.estimation_errors[bucket]
        )
        similarity_delta = (
            self.similarity_error_with(element, bucket) - self.similarity_errors[bucket]
        )
        return lam * estimation_delta + (1.0 - lam) * similarity_delta

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def remove(self, element: int) -> int:
        """Remove ``element`` from its current bucket; return that bucket."""
        bucket = int(self.labels[element])
        self._remove_raw(element, bucket)
        self.estimation_errors[bucket] = self._recompute_estimation(bucket)
        self.similarity_errors[bucket] = self._similarity_from_sums(bucket)
        self.labels[element] = -1
        return bucket

    def add(self, element: int, bucket: int) -> None:
        """Assign the (currently unassigned) ``element`` to ``bucket``."""
        if self.labels[element] != -1:
            raise ValueError("element must be removed before it can be re-added")
        self._insert_raw(element, bucket)
        self.estimation_errors[bucket] = self._recompute_estimation(bucket)
        self.similarity_errors[bucket] = self._similarity_from_sums(bucket)
        self.labels[element] = bucket

    def to_assignment(self) -> BucketAssignment:
        """Snapshot the current labels as a :class:`BucketAssignment`."""
        if np.any(self.labels < 0):
            raise RuntimeError("cannot snapshot: some elements are unassigned")
        return BucketAssignment(labels=self.labels.copy(), num_buckets=self.num_buckets)
