"""Exact dynamic programming for the λ = 1 case (paper Section 4.4).

With λ = 1 the similarity term vanishes and Problem (1) reduces to a
one-dimensional clustering problem over the observed frequencies: partition
the (sorted) frequencies into at most ``b`` groups minimizing the sum, over
groups, of absolute deviations from the group's *mean* (the centre is the
mean because that is what the streaming estimator will answer with).  A
layered dynamic program finds the best partition into contiguous ranges of
the sorted frequencies exactly:

``D[k][i] = min_{j ≤ i} D[k−1][j−1] + cost(j, i)``

where ``cost(j, i)`` is the deviation cost of the segment ``j..i``.  Three
evaluation strategies are provided:

* ``"quadratic"`` — the straightforward O(n²b) DP (the paper's reference
  method, per Wang & Song's Ckmeans.1d.dp);
* ``"smawk"`` — O(nb) via SMAWK matrix searching (Wu 1991);
* ``"divide_conquer"`` — O(nb log n) divide-and-conquer on the monotone
  argmin, included as an independently-implemented cross-check.

``center="median"`` solves the classic 1-D k-median variant (the name the
paper uses for the problem); the default ``center="mean"`` matches the
formulation as written.

Two subtleties the paper glosses over:

* The linear-time matrix-searching accelerations require the segment cost
  to satisfy the concave quadrangle (Monge) inequality.  The
  *median*-centre cost does; the *mean*-centre cost — the one Problem (3)
  literally uses — does not (counter-examples are easy to generate), so for
  ``center="mean"`` only the quadratic DP evaluates every contiguous
  partition and the fast methods are rejected.
* The DP searches **contiguous** partitions of the sorted values.  For
  ``center="median"`` (classic 1-D k-median) some optimal partition is
  always contiguous, so the DP is globally optimal.  For ``center="mean"``
  contiguity can fail: with frequencies ``[0, 11, 11, 11, 17, 17, 21]`` and
  ``b = 2``, the best contiguous split ``{0,11,11,11} | {17,17,21}`` costs
  131/6 ≈ 21.83 while the non-contiguous ``{0,11,11,11,21} | {17,17}``
  costs 21.6 — the outlier 21 is cheaper to absorb into the large bucket
  than to let it drag the small bucket's mean.  The DP is therefore the
  contiguous optimum (and an upper bound on the global one) under the mean
  centre; ``tests/optimize/test_dp.py`` pins both facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.optimize.objective import BucketAssignment, estimation_error
from repro.optimize.smawk import smawk_row_minima

__all__ = ["DpResult", "SegmentCost", "cluster_cost_matrix", "dynamic_programming"]

_INFINITY = float("inf")


class SegmentCost:
    """O(1)/O(log n) segment deviation costs over sorted values.

    Given values sorted in non-decreasing order, ``cost(j, i)`` (0-based,
    inclusive) is the sum of absolute deviations of ``values[j..i]`` from the
    segment's mean (or median).  Prefix sums make each query cheap without
    materializing the O(n²) cost matrix.
    """

    def __init__(self, sorted_values: np.ndarray, center: str = "mean") -> None:
        if center not in ("mean", "median"):
            raise ValueError("center must be 'mean' or 'median'")
        self.center = center
        self.values = np.asarray(sorted_values, dtype=float)
        if np.any(np.diff(self.values) < 0):
            raise ValueError("values must be sorted in non-decreasing order")
        self._prefix = np.concatenate([[0.0], np.cumsum(self.values)])

    def _range_sum(self, start: int, end: int) -> float:
        """Sum of ``values[start..end]`` inclusive."""
        return float(self._prefix[end + 1] - self._prefix[start])

    def segment_center(self, start: int, end: int) -> float:
        """The mean or median of ``values[start..end]``."""
        length = end - start + 1
        if self.center == "mean":
            return self._range_sum(start, end) / length
        return float(self.values[start + (length - 1) // 2])

    def __call__(self, start: int, end: int) -> float:
        """Deviation cost of the segment ``values[start..end]`` (inclusive)."""
        if start > end:
            return 0.0
        center = self.segment_center(start, end)
        # Values are sorted, so everything below the centre lies in a prefix
        # of the segment; locate the split with binary search.
        split = int(np.searchsorted(self.values[start : end + 1], center, side="right"))
        below_count = split
        below_sum = self._range_sum(start, start + split - 1) if split > 0 else 0.0
        total_sum = self._range_sum(start, end)
        above_sum = total_sum - below_sum
        above_count = (end - start + 1) - below_count
        return (below_count * center - below_sum) + (above_sum - above_count * center)

    def costs_ending_at(self, end: int) -> np.ndarray:
        """Vector of costs ``[cost(0, end), cost(1, end), ..., cost(end, end)]``.

        Used by the quadratic DP layer so one row of the cost matrix is
        computed with numpy instead of ``end + 1`` Python-level calls.
        """
        starts = np.arange(end + 1)
        lengths = end + 1 - starts
        segment_sums = self._prefix[end + 1] - self._prefix[starts]
        if self.center == "mean":
            centers = segment_sums / lengths
            # Number of values in [start, end] that are <= centre: a global
            # searchsorted works because the values are sorted.
            split_positions = np.searchsorted(
                self.values[: end + 1], centers, side="right"
            )
        else:
            median_positions = starts + (lengths - 1) // 2
            centers = self.values[median_positions]
            split_positions = median_positions + 1
        below_counts = split_positions - starts
        below_sums = self._prefix[split_positions] - self._prefix[starts]
        above_sums = segment_sums - below_sums
        above_counts = lengths - below_counts
        return (below_counts * centers - below_sums) + (
            above_sums - above_counts * centers
        )


def cluster_cost_matrix(sorted_values: np.ndarray, center: str = "mean") -> np.ndarray:
    """Dense ``(n, n)`` matrix of segment costs (for testing / small inputs)."""
    cost = SegmentCost(sorted_values, center=center)
    n = len(cost.values)
    matrix = np.zeros((n, n))
    for start in range(n):
        for end in range(start, n):
            matrix[start, end] = cost(start, end)
    return matrix


@dataclass
class DpResult:
    """Result of the λ=1 dynamic program."""

    assignment: BucketAssignment
    cost: float
    boundaries: List[int]
    method: str

    @property
    def num_clusters_used(self) -> int:
        return len(self.boundaries)


def _dp_layer_quadratic(previous: np.ndarray, cost: SegmentCost) -> tuple:
    """One DP layer by exhaustive minimization: O(n²) (numpy-vectorized rows)."""
    n = len(previous) - 1
    current = np.full(n + 1, _INFINITY)
    argmin = np.zeros(n + 1, dtype=int)
    for i in range(1, n + 1):
        # candidates[j - 1] = previous[j - 1] + cost(j - 1, i - 1) for j = 1..i.
        candidates = previous[:i] + cost.costs_ending_at(i - 1)
        best = int(np.argmin(candidates))
        current[i] = candidates[best]
        argmin[i] = best + 1
    return current, argmin


def _dp_layer_smawk(previous: np.ndarray, cost: SegmentCost) -> tuple:
    """One DP layer via SMAWK row minima: O(n)."""
    n = len(previous) - 1

    def lookup(row: int, col: int) -> float:
        # row, col are 0-based; they represent i = row + 1 and j = col + 1.
        i = row + 1
        j = col + 1
        if j > i or previous[j - 1] == _INFINITY:
            # Padding: the upper-right region must stay totally monotone, so
            # return a huge value that grows with the column index.
            return 1e200 * (1 + col)
        return previous[j - 1] + cost(j - 1, i - 1)

    minima_cols = smawk_row_minima(n, n, lookup)
    current = np.full(n + 1, _INFINITY)
    argmin = np.zeros(n + 1, dtype=int)
    for row in range(n):
        col = minima_cols[row]
        current[row + 1] = lookup(row, col)
        argmin[row + 1] = col + 1
    return current, argmin


def _dp_layer_divide_conquer(previous: np.ndarray, cost: SegmentCost) -> tuple:
    """One DP layer via divide-and-conquer on the monotone argmin: O(n log n)."""
    n = len(previous) - 1
    current = np.full(n + 1, _INFINITY)
    argmin = np.zeros(n + 1, dtype=int)

    def solve(lo: int, hi: int, opt_lo: int, opt_hi: int) -> None:
        if lo > hi:
            return
        mid = (lo + hi) // 2
        best_value = _INFINITY
        best_j = opt_lo
        upper = min(mid, opt_hi)
        for j in range(opt_lo, upper + 1):
            if previous[j - 1] == _INFINITY:
                continue
            value = previous[j - 1] + cost(j - 1, mid - 1)
            if value < best_value:
                best_value = value
                best_j = j
        current[mid] = best_value
        argmin[mid] = best_j
        solve(lo, mid - 1, opt_lo, best_j)
        solve(mid + 1, hi, best_j, opt_hi)

    solve(1, n, 1, n)
    return current, argmin


_LAYER_METHODS = {
    "quadratic": _dp_layer_quadratic,
    "smawk": _dp_layer_smawk,
    "divide_conquer": _dp_layer_divide_conquer,
}


def dynamic_programming(
    frequencies,
    num_buckets: int,
    center: str = "mean",
    method: str = "auto",
) -> DpResult:
    """Solve the λ=1 bucket-assignment problem over sorted contiguous groups.

    Exact over partitions of the sorted frequencies into contiguous ranges —
    which is the global optimum for ``center="median"``; for
    ``center="mean"`` a non-contiguous partition can (rarely) do better, so
    the result is the contiguous optimum and an upper bound on the global
    one (see the module docstring for a counterexample).

    Parameters
    ----------
    frequencies:
        Observed prefix frequencies (any order; sorting is handled here).
    num_buckets:
        Bucket budget ``b``; at most ``min(b, n)`` buckets are used.
    center:
        ``"mean"`` (Problem (3) as written) or ``"median"`` (classic 1-D
        k-median).
    method:
        ``"quadratic"``, ``"smawk"``, ``"divide_conquer"`` or ``"auto"``.
        The fast methods require ``center="median"`` (the mean-centre cost
        violates the Monge condition they rely on); ``"auto"`` picks smawk
        for large median-centre inputs and the quadratic DP otherwise.

    Returns
    -------
    DpResult
        Optimal assignment, its estimation-error cost, and the sorted-order
        boundaries of the clusters.
    """
    frequencies = np.asarray(frequencies, dtype=float).ravel()
    if frequencies.size == 0:
        raise ValueError("frequencies must be non-empty")
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    if method not in ("auto", *_LAYER_METHODS):
        raise ValueError(f"unknown method '{method}'")

    n = frequencies.size
    num_clusters = min(num_buckets, n)
    if method == "auto":
        method = "smawk" if (n > 256 and center == "median") else "quadratic"
    if center == "mean" and method != "quadratic":
        raise ValueError(
            "the mean-centre segment cost violates the Monge condition required "
            f"by the '{method}' method; use method='quadratic' (exact) or "
            "center='median'"
        )
    layer = _LAYER_METHODS[method]

    order = np.argsort(frequencies, kind="stable")
    sorted_values = frequencies[order]
    cost = SegmentCost(sorted_values, center=center)

    # D[i] = optimal cost of clustering the first i sorted values with the
    # current number of clusters; parents[k][i] = start of the last cluster.
    current = np.full(n + 1, _INFINITY)
    current[0] = 0.0
    for i in range(1, n + 1):
        current[i] = cost(0, i - 1)
    parents = [np.zeros(n + 1, dtype=int)]
    parents[0][1:] = 1

    for _ in range(1, num_clusters):
        previous = current.copy()
        previous[0] = _INFINITY  # every cluster must be non-empty
        current, argmin = layer(previous, cost)
        current[0] = 0.0
        parents.append(argmin)

    # Using fewer clusters can never help (costs are non-negative and the
    # empty cluster is free), so the optimum uses exactly num_clusters layers;
    # still, guard against the degenerate 1-cluster case.
    best_cost = float(current[n])

    # Backtrack the cluster boundaries in sorted order.
    boundaries: List[int] = []
    end = n
    for k in range(num_clusters - 1, -1, -1):
        start = int(parents[k][end]) if k > 0 else 1
        boundaries.append(start - 1)  # 0-based start index of the cluster
        end = start - 1
        if end == 0:
            break
    boundaries.reverse()

    # Convert sorted-order cluster ranges back to labels over the original order.
    labels_sorted = np.zeros(n, dtype=int)
    for cluster_index, start in enumerate(boundaries):
        stop = boundaries[cluster_index + 1] if cluster_index + 1 < len(boundaries) else n
        labels_sorted[start:stop] = cluster_index
    labels = np.zeros(n, dtype=int)
    labels[order] = labels_sorted

    assignment = BucketAssignment(labels=labels, num_buckets=num_buckets)
    # Recompute the cost from the assignment for the mean-centre case to keep
    # the reported number consistent with the objective module (for the
    # median centre the DP cost is the k-median cost, which differs).
    if center == "mean":
        best_cost = estimation_error(frequencies, assignment)
    return DpResult(
        assignment=assignment,
        cost=best_cost,
        boundaries=boundaries,
        method=method,
    )
