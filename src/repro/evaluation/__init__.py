"""Evaluation harness: error metrics, result containers, experiment runners.

The metrics mirror the paper exactly:

* the prefix-side *estimation / similarity / overall* errors of a learned
  assignment (Section 6.4);
* the streaming-side *average (per element) absolute error* and *expected
  magnitude of absolute error* (Section 7.4).

The experiment runners regenerate every figure and table of the evaluation:
``synthetic_experiments`` covers Figures 1-6 and ``querylog_experiments``
covers Figures 7-8 and Table 1.  Each runner returns an
:class:`~repro.evaluation.results.ExperimentResult` that the benchmark
harness renders as the same rows/series the paper reports.
"""

from repro.evaluation.metrics import (
    average_absolute_error,
    expected_magnitude_error,
    errors_over_elements,
    assignment_errors,
)
from repro.evaluation.results import ExperimentResult, SeriesPoint
from repro.evaluation.synthetic_experiments import (
    run_visualization_experiment,
    run_lambda_sweep,
    run_bcd_vs_dp,
    run_bcd_stability,
    run_fraction_seen,
    run_classifier_comparison,
)
from repro.evaluation.querylog_experiments import (
    EstimatorSpec,
    build_estimator,
    run_error_vs_size,
    run_error_vs_time,
    run_rank_error_table,
)

__all__ = [
    "average_absolute_error",
    "expected_magnitude_error",
    "errors_over_elements",
    "assignment_errors",
    "ExperimentResult",
    "SeriesPoint",
    "run_visualization_experiment",
    "run_lambda_sweep",
    "run_bcd_vs_dp",
    "run_bcd_stability",
    "run_fraction_seen",
    "run_classifier_comparison",
    "EstimatorSpec",
    "build_estimator",
    "run_error_vs_size",
    "run_error_vs_time",
    "run_rank_error_table",
]
