"""Error metrics (paper Sections 6.4 and 7.4)."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Tuple

import numpy as np

from repro.optimize.objective import (
    BucketAssignment,
    ObjectiveValue,
    evaluate_assignment,
)
from repro.sketches.base import FrequencyEstimator
from repro.streams.stream import Element, FrequencyVector

__all__ = [
    "average_absolute_error",
    "expected_magnitude_error",
    "errors_over_elements",
    "assignment_errors",
]


def assignment_errors(
    frequencies, features, assignment: BucketAssignment, lam: float
) -> ObjectiveValue:
    """Prefix-side errors of a learned assignment (Problem (1) terms)."""
    return evaluate_assignment(frequencies, features, assignment, lam)


def errors_over_elements(
    true_frequencies: Dict[Hashable, float],
    estimated_frequencies: Dict[Hashable, float],
) -> Tuple[float, float]:
    """Return ``(average_absolute, expected_magnitude)`` errors.

    * average (per element) absolute error:
      ``(1/|U|) Σ_u |f_u − f̃_u|``
    * expected magnitude of absolute error:
      ``Σ_u f_u · |f_u − f̃_u| / Σ_u f_u``

    Both are computed over the keys of ``true_frequencies``.
    """
    if not true_frequencies:
        raise ValueError("true_frequencies must be non-empty")
    keys = list(true_frequencies)
    truth = np.array([float(true_frequencies[key]) for key in keys])
    estimates = np.array([float(estimated_frequencies.get(key, 0.0)) for key in keys])
    absolute = np.abs(truth - estimates)
    average = float(absolute.mean())
    total = truth.sum()
    expected = float((truth * absolute).sum() / total) if total > 0 else 0.0
    return average, expected


def _estimates_for(
    estimator: FrequencyEstimator,
    keys: Iterable[Hashable],
    element_lookup: Optional[Dict[Hashable, Element]] = None,
) -> Dict[Hashable, float]:
    """Query an estimator for every key, using element features when known."""
    estimates: Dict[Hashable, float] = {}
    for key in keys:
        if element_lookup is not None and key in element_lookup:
            element = element_lookup[key]
        else:
            element = Element(key=key)
        estimates[key] = estimator.estimate(element)
    return estimates


def average_absolute_error(
    estimator: FrequencyEstimator,
    true_frequencies: FrequencyVector,
    element_lookup: Optional[Dict[Hashable, Element]] = None,
) -> float:
    """Average per-element absolute error of an estimator against ground truth."""
    estimates = _estimates_for(estimator, true_frequencies.keys(), element_lookup)
    average, _ = errors_over_elements(dict(true_frequencies.items()), estimates)
    return average


def expected_magnitude_error(
    estimator: FrequencyEstimator,
    true_frequencies: FrequencyVector,
    element_lookup: Optional[Dict[Hashable, Element]] = None,
) -> float:
    """Expected magnitude of the absolute error (frequency-weighted)."""
    estimates = _estimates_for(estimator, true_frequencies.keys(), element_lookup)
    _, expected = errors_over_elements(dict(true_frequencies.items()), estimates)
    return expected
