"""Query-log experiment runners (paper Section 7, Figures 7-8 and Table 1).

These runners compare three estimators on a multi-day query log:

* ``count-min`` — the standard Count-Min Sketch; the best depth among a
  candidate set is reported, as in the paper;
* ``heavy-hitter`` — the Learned CMS with an *ideal* heavy-hitter oracle
  (the IDs of the top queries over the whole evaluation period are known);
  the best depth / number of unique buckets among candidate sets is reported;
* ``opt-hash`` — the proposed estimator, trained on day 0 with the bucket
  budget split between stored IDs and buckets by the ratio ``c``
  (Section 7.3) and a bag-of-words + counts featurizer for unseen queries.

The memory accounting follows the paper: each bucket consumes 4 bytes, so a
``m``-KB estimator has ``b = m·10³ / 4`` buckets; LCMS unique buckets cost
two bucket-equivalents; opt-hash stored IDs cost one bucket-equivalent each.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import (
    EstimatorSpec,
    OptHashSpec,
    SketchSpec,
    SpecError,
    build,
)
from repro.core.pipeline import replay, split_bucket_budget
from repro.evaluation.metrics import errors_over_elements
from repro.evaluation.results import ExperimentResult
from repro.ml.text import QueryFeaturizer
from repro.sketches.base import BYTES_PER_BUCKET, FrequencyEstimator
from repro.sketches.learned_cms import rank_heavy_keys
from repro.streams.querylog import QueryLogDataset
from repro.streams.stream import Element, FrequencyVector

__all__ = [
    "spec_for_method",
    "build_estimator",
    "run_error_vs_size",
    "run_error_vs_time",
    "run_rank_error_table",
    "default_opt_hash_options",
]


def default_opt_hash_options() -> Dict:
    """Default opt-hash settings for the query-log experiments.

    ``ratio`` is the paper's ``c`` (buckets per stored ID); λ=1 and a random
    forest classifier match the configuration the paper reports results for,
    scaled down (fewer trees, smaller vocabulary) to keep pure-Python
    training times reasonable.
    """
    return {
        "ratio": 0.3,
        "lam": 1.0,
        "solver": "dp",
        # The median-centre DP admits the O(nb) SMAWK acceleration, which is
        # what makes training at tens of thousands of stored IDs practical in
        # pure Python; the resulting partition is interchangeable with the
        # mean-centre one for streaming accuracy.
        "solver_options": {"center": "median", "method": "auto"},
        "classifier": "rf",
        "classifier_options": {"n_estimators": 10, "max_depth": 12},
        "vocabulary_size": 200,
    }


# ----------------------------------------------------------------------
# estimator specs
# ----------------------------------------------------------------------
def _total_buckets(size_kb: float) -> int:
    return max(2, int(round(size_kb * 1000.0 / BYTES_PER_BUCKET)))


def spec_for_method(
    method: str,
    size_kb: float,
    options: Optional[Dict] = None,
    oracle_frequencies: Optional[Dict[Hashable, float]] = None,
    seed: Optional[int] = None,
) -> EstimatorSpec:
    """The declarative spec of one paper method under a memory budget.

    ``method`` is the paper's name (``count-min`` / ``heavy-hitter`` /
    ``opt-hash``); the returned spec is a plain :mod:`repro.api` spec, so a
    whole experiment is a grid of JSON-safe specs rather than bespoke
    constructor wiring.  ``opt-hash`` splits the bucket budget between
    stored IDs and buckets via the ``ratio`` option (Section 7.3); the
    ``vocabulary_size`` option belongs to the query featurizer and is
    consumed by :func:`build_estimator`, not the spec.
    """
    options = dict(options or {})
    total = _total_buckets(size_kb)
    if method == "count-min":
        return SketchSpec(
            "count_min",
            total_buckets=total,
            depth=options.get("depth", 2),
            seed=seed,
        )
    if method == "heavy-hitter":
        if oracle_frequencies is None:
            raise SpecError("heavy-hitter requires oracle_frequencies")
        num_heavy = options.get("num_heavy_buckets", 10)
        return SketchSpec(
            "learned_cms",
            total_buckets=total,
            num_heavy_buckets=num_heavy,
            heavy_keys=rank_heavy_keys(oracle_frequencies, num_heavy),
            depth=options.get("depth", 2),
            seed=seed,
        )
    if method == "opt-hash":
        options = {**default_opt_hash_options(), **options}
        num_stored, num_buckets = split_bucket_budget(total, options["ratio"])
        return OptHashSpec(
            num_buckets=num_buckets,
            lam=options["lam"],
            solver=options["solver"],
            solver_options=dict(options.get("solver_options", {})),
            classifier=options["classifier"],
            classifier_options=dict(options["classifier_options"]),
            max_stored_elements=num_stored,
            seed=seed,
        )
    raise SpecError(f"unknown method '{method}'")


def build_estimator(
    spec: EstimatorSpec,
    dataset: Optional[QueryLogDataset] = None,
    vocabulary_size: int = 200,
) -> FrequencyEstimator:
    """Build one estimator from its spec via :func:`repro.api.build`.

    Opt-hash specs train on day 0 of ``dataset`` with the bag-of-words +
    counts query featurizer of Section 7.3; every other spec builds
    directly.
    """
    if not isinstance(spec, OptHashSpec):
        return build(spec)
    if dataset is None:
        raise SpecError("opt-hash specs train on a dataset: pass one")
    prefix = dataset.prefix()
    featurizer_model = QueryFeaturizer(vocabulary_size=vocabulary_size)
    featurizer_model.fit([element.key for element in prefix.distinct_elements()])

    def featurize(element: Element) -> np.ndarray:
        return featurizer_model.transform_one(str(element.key))

    return build(spec, prefix=prefix, featurizer=featurize)


# ----------------------------------------------------------------------
# streaming simulation
# ----------------------------------------------------------------------
def _evaluate_at_checkpoint(
    estimator: FrequencyEstimator,
    truth: FrequencyVector,
) -> Tuple[float, float]:
    """Average and expected-magnitude errors over all queries seen so far."""
    keys = list(truth.keys())
    estimates = dict(zip(keys, estimator.estimate_batch(keys).tolist()))
    return errors_over_elements(dict(truth.items()), estimates)


def _simulate(
    estimator: FrequencyEstimator,
    dataset: QueryLogDataset,
    checkpoints: Sequence[int],
    include_day_zero_updates: bool,
) -> Dict[int, Tuple[float, float]]:
    """Stream the dataset through an estimator, measuring at checkpoints.

    Each day replays through the estimator's vectorized ``update_batch`` in
    chunks (see :func:`repro.core.pipeline.replay`) instead of one Python
    call per arrival.  ``include_day_zero_updates`` is True for the
    conventional sketches (they see every arrival); opt-hash already
    absorbed day 0 during training.
    """
    checkpoints = sorted(set(int(day) for day in checkpoints))
    if not checkpoints:
        raise ValueError("at least one checkpoint day is required")
    if checkpoints[-1] >= len(dataset.days):
        raise ValueError("checkpoint beyond the dataset's number of days")
    results: Dict[int, Tuple[float, float]] = {}
    cumulative = FrequencyVector()
    cumulative.increment_batch(dataset.days[0].key_array())
    if include_day_zero_updates:
        replay(estimator, dataset.days[0])
    if 0 in checkpoints:
        results[0] = _evaluate_at_checkpoint(estimator, cumulative)
    for day in range(1, checkpoints[-1] + 1):
        day_stream = dataset.days[day]
        replay(estimator, day_stream)
        cumulative.increment_batch(day_stream.key_array())
        if day in checkpoints:
            results[day] = _evaluate_at_checkpoint(estimator, cumulative)
    return results


def _candidate_specs(
    method: str,
    size_kb: float,
    oracle_frequencies: Optional[Dict[Hashable, float]],
    seed: Optional[int],
    count_min_depths: Sequence[int],
    heavy_hitter_depths: Sequence[int],
    heavy_hitter_buckets: Sequence[int],
    opt_hash_options: Dict,
) -> List[EstimatorSpec]:
    """The hyperparameter candidates the paper searches, as a spec grid."""
    if method == "count-min":
        return [
            spec_for_method("count-min", size_kb, {"depth": depth}, seed=seed)
            for depth in count_min_depths
        ]
    if method == "heavy-hitter":
        total = _total_buckets(size_kb)
        specs = []
        for depth in heavy_hitter_depths:
            for num_heavy in heavy_hitter_buckets:
                if 2 * num_heavy + depth <= total:
                    specs.append(
                        spec_for_method(
                            "heavy-hitter",
                            size_kb,
                            {"depth": depth, "num_heavy_buckets": num_heavy},
                            oracle_frequencies=oracle_frequencies,
                            seed=seed,
                        )
                    )
        return specs or [
            spec_for_method(
                "heavy-hitter",
                size_kb,
                {"depth": 1, "num_heavy_buckets": 0},
                oracle_frequencies=oracle_frequencies,
                seed=seed,
            )
        ]
    if method == "opt-hash":
        return [
            spec_for_method("opt-hash", size_kb, dict(opt_hash_options), seed=seed)
        ]
    raise SpecError(f"unknown method '{method}'")


def _best_simulation(
    method: str,
    size_kb: float,
    dataset: QueryLogDataset,
    checkpoints: Sequence[int],
    oracle_frequencies: Dict[Hashable, float],
    seed: Optional[int],
    count_min_depths: Sequence[int],
    heavy_hitter_depths: Sequence[int],
    heavy_hitter_buckets: Sequence[int],
    opt_hash_options: Dict,
) -> Dict[int, Tuple[float, float]]:
    """Simulate every hyperparameter candidate and keep the best-performing one.

    "Best" means the lowest average absolute error at the last checkpoint,
    mirroring the paper's "we report the best performing version".
    """
    specs = _candidate_specs(
        method,
        size_kb,
        oracle_frequencies,
        seed,
        count_min_depths,
        heavy_hitter_depths,
        heavy_hitter_buckets,
        opt_hash_options,
    )
    vocabulary_size = {**default_opt_hash_options(), **opt_hash_options}.get(
        "vocabulary_size", 200
    )
    best_results: Optional[Dict[int, Tuple[float, float]]] = None
    last_checkpoint = max(checkpoints)
    for spec in specs:
        estimator = build_estimator(spec, dataset, vocabulary_size=vocabulary_size)
        results = _simulate(
            estimator,
            dataset,
            checkpoints,
            include_day_zero_updates=not isinstance(spec, OptHashSpec),
        )
        if best_results is None or results[last_checkpoint][0] < best_results[last_checkpoint][0]:
            best_results = results
    return best_results


# ----------------------------------------------------------------------
# Figure 7: error as a function of estimator size
# ----------------------------------------------------------------------
def run_error_vs_size(
    dataset: QueryLogDataset,
    sizes_kb: Sequence[float] = (1.2, 4.0, 12.0, 40.0, 120.0),
    checkpoint_days: Sequence[int] = (30, 70),
    methods: Sequence[str] = ("count-min", "heavy-hitter", "opt-hash"),
    num_repetitions: int = 1,
    count_min_depths: Sequence[int] = (1, 2, 4),
    heavy_hitter_depths: Sequence[int] = (1, 2),
    heavy_hitter_buckets: Sequence[int] = (10, 100, 1000, 10000),
    opt_hash_options: Optional[Dict] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 7: error vs estimator size at the checkpoint days."""
    checkpoint_days = sorted(set(checkpoint_days))
    result = ExperimentResult(
        name="Figure 7: estimation error vs estimator size (KB)",
        x_label="size_kb",
        metadata={"checkpoint_days": list(checkpoint_days), "methods": list(methods)},
    )
    opt_hash_options = opt_hash_options or {}
    oracle_frequencies = dict(
        dataset.cumulative_frequencies(max(checkpoint_days)).items()
    )
    for size_kb in sizes_kb:
        per_method: Dict[str, Dict[int, Tuple[List[float], List[float]]]] = {
            method: {day: ([], []) for day in checkpoint_days} for method in methods
        }
        for repetition in range(num_repetitions):
            rep_seed = seed + repetition
            for method in methods:
                results = _best_simulation(
                    method,
                    size_kb,
                    dataset,
                    checkpoint_days,
                    oracle_frequencies,
                    rep_seed,
                    count_min_depths,
                    heavy_hitter_depths,
                    heavy_hitter_buckets,
                    opt_hash_options,
                )
                for day in checkpoint_days:
                    average, expected = results[day]
                    per_method[method][day][0].append(average)
                    per_method[method][day][1].append(expected)
        for method in methods:
            for day in checkpoint_days:
                averages, expecteds = per_method[method][day]
                result.add_point(f"average_error_day_{day}", method, size_kb, averages)
                result.add_point(f"expected_error_day_{day}", method, size_kb, expecteds)
    return result


# ----------------------------------------------------------------------
# Figure 8: error as a function of time
# ----------------------------------------------------------------------
def run_error_vs_time(
    dataset: QueryLogDataset,
    sizes_kb: Sequence[float] = (4.0, 120.0),
    checkpoint_days: Optional[Sequence[int]] = None,
    methods: Sequence[str] = ("count-min", "heavy-hitter", "opt-hash"),
    num_repetitions: int = 1,
    count_min_depths: Sequence[int] = (1, 2, 4),
    heavy_hitter_depths: Sequence[int] = (1, 2),
    heavy_hitter_buckets: Sequence[int] = (10, 100, 1000, 10000),
    opt_hash_options: Optional[Dict] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 8: error over time for fixed memory configurations."""
    if checkpoint_days is None:
        last_day = len(dataset.days) - 1
        step = max(1, last_day // 9)
        checkpoint_days = list(range(step, last_day + 1, step))
    checkpoint_days = sorted(set(checkpoint_days))
    result = ExperimentResult(
        name="Figure 8: estimation error vs time (days)",
        x_label="day",
        metadata={"sizes_kb": list(sizes_kb), "methods": list(methods)},
    )
    opt_hash_options = opt_hash_options or {}
    oracle_frequencies = dict(
        dataset.cumulative_frequencies(max(checkpoint_days)).items()
    )
    for size_kb in sizes_kb:
        for method in methods:
            per_day_average: Dict[int, List[float]] = {day: [] for day in checkpoint_days}
            per_day_expected: Dict[int, List[float]] = {day: [] for day in checkpoint_days}
            for repetition in range(num_repetitions):
                rep_seed = seed + repetition
                results = _best_simulation(
                    method,
                    size_kb,
                    dataset,
                    checkpoint_days,
                    oracle_frequencies,
                    rep_seed,
                    count_min_depths,
                    heavy_hitter_depths,
                    heavy_hitter_buckets,
                    opt_hash_options,
                )
                for day in checkpoint_days:
                    per_day_average[day].append(results[day][0])
                    per_day_expected[day].append(results[day][1])
            for day in checkpoint_days:
                result.add_point(
                    f"average_error_{size_kb}kb", method, day, per_day_average[day]
                )
                result.add_point(
                    f"expected_error_{size_kb}kb", method, day, per_day_expected[day]
                )
    return result


# ----------------------------------------------------------------------
# Table 1: per-rank error percentage
# ----------------------------------------------------------------------
def run_rank_error_table(
    dataset: QueryLogDataset,
    size_kb: float = 120.0,
    ranks: Sequence[int] = (1, 10, 100, 1000, 10000),
    opt_hash_options: Optional[Dict] = None,
    num_repetitions: int = 1,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Table 1: opt-hash error as a percentage of the query frequency.

    The table is computed after the final day of the dataset, for the queries
    at the requested popularity ranks (1-based; ranks beyond the number of
    distinct queries are skipped).
    """
    last_day = len(dataset.days) - 1
    truth = dataset.cumulative_frequencies(last_day)
    ranked = truth.most_common()
    result = ExperimentResult(
        name="Table 1: average error as a percentage of query frequency",
        x_label="query_rank",
        metadata={"size_kb": size_kb, "final_day": last_day},
    )
    opt_hash_options = opt_hash_options or {}
    valid_ranks = [rank for rank in ranks if 1 <= rank <= len(ranked)]
    per_rank: Dict[int, List[float]] = {rank: [] for rank in valid_ranks}
    frequencies_at_rank: Dict[int, float] = {}
    vocabulary_size = {**default_opt_hash_options(), **opt_hash_options}.get(
        "vocabulary_size", 200
    )
    for repetition in range(num_repetitions):
        rep_seed = seed + repetition
        spec = spec_for_method(
            "opt-hash", size_kb, dict(opt_hash_options), seed=rep_seed
        )
        estimator = build_estimator(spec, dataset, vocabulary_size=vocabulary_size)
        _simulate(
            estimator,
            dataset,
            checkpoints=[last_day],
            include_day_zero_updates=False,
        )
        for rank in valid_ranks:
            key, frequency = ranked[rank - 1]
            frequencies_at_rank[rank] = float(frequency)
            estimate = estimator.estimate(Element(key=key))
            percentage = 100.0 * abs(frequency - estimate) / max(1.0, float(frequency))
            per_rank[rank].append(percentage)
    for rank in valid_ranks:
        result.add_point("error_percentage", "opt-hash", rank, per_rank[rank])
        result.add_point(
            "query_frequency", "opt-hash", rank, [frequencies_at_rank[rank]]
        )
    return result
