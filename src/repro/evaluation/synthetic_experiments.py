"""Synthetic-data experiment runners (paper Section 6, Figures 1-6).

Every runner is parameterized by the same knobs the paper sweeps (number of
groups ``G``, fraction seen ``g0``, λ, solver, classifier) plus a repetition
count, and returns an :class:`~repro.evaluation.results.ExperimentResult`
whose series are the lines of the corresponding figure.  Parameters default
to values small enough for a laptop; the benchmark harness passes the scales
it wants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import OptHashSpec, train
from repro.core.pipeline import TrainingResult
from repro.evaluation.results import ExperimentResult
from repro.optimize.objective import (
    BucketAssignment,
    estimation_error,
    evaluate_assignment,
    similarity_error,
)
from repro.streams.stream import Stream, StreamPrefix
from repro.streams.synthetic import SyntheticConfig, SyntheticGenerator

__all__ = [
    "VisualizationResult",
    "run_visualization_experiment",
    "run_lambda_sweep",
    "run_bcd_vs_dp",
    "run_bcd_stability",
    "run_fraction_seen",
    "run_classifier_comparison",
]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _make_generator(
    num_groups: int, fraction_seen: float, seed: Optional[int]
) -> SyntheticGenerator:
    config = SyntheticConfig(
        num_groups=num_groups, fraction_seen=fraction_seen, seed=seed
    )
    return SyntheticGenerator(config)


def _train(
    prefix: StreamPrefix,
    num_buckets: int,
    lam: float,
    solver: str,
    seed: Optional[int],
    classifier: Optional[str] = "cart",
    solver_options: Optional[Dict] = None,
    max_stored_elements: Optional[int] = None,
) -> Tuple[TrainingResult, float]:
    """Train opt-hash on a prefix and return the result plus elapsed seconds.

    The configuration travels as a declarative :class:`OptHashSpec`, so a
    whole figure is a spec grid handed to :func:`repro.api.train`.
    """
    spec = OptHashSpec(
        num_buckets=num_buckets,
        lam=lam,
        solver=solver,
        solver_options=solver_options or {},
        classifier=classifier,
        max_stored_elements=max_stored_elements,
        seed=seed,
    )
    start = time.monotonic()
    result = train(spec, prefix)
    elapsed = time.monotonic() - start
    return result, elapsed


def _unseen_assignment_errors(
    training: TrainingResult,
    prefix: StreamPrefix,
    stream: Stream,
) -> Tuple[float, float]:
    """Per-element estimation and per-pair similarity errors on unseen elements.

    Unseen elements are those that appear in ``stream`` (the arrivals after
    the prefix) but not in the prefix.  Their buckets come from the trained
    classifier; their frequencies are measured over ``stream``.
    """
    prefix_keys = set(prefix.distinct_keys())
    stream_frequencies = stream.frequencies()
    unseen_elements = [
        element
        for element in stream.distinct_elements()
        if element.key not in prefix_keys
    ]
    if not unseen_elements:
        return 0.0, 0.0
    frequencies = stream_frequencies.counts_for(
        [element.key for element in unseen_elements]
    )
    features = np.array([element.feature_array() for element in unseen_elements])
    labels = training.scheme.predict_buckets(unseen_elements)
    assignment = BucketAssignment(
        labels=labels, num_buckets=training.scheme.num_buckets
    )
    estimation = estimation_error(frequencies, assignment, per_element=True)
    similarity = similarity_error(features, assignment, per_pair=True)
    return estimation, similarity


# ----------------------------------------------------------------------
# Figure 1: visualization of the learned hash code
# ----------------------------------------------------------------------
@dataclass
class VisualizationResult:
    """Raw arrays behind Figure 1 (element groups, frequencies, hash codes)."""

    seen_features: np.ndarray
    seen_groups: np.ndarray
    seen_frequencies: np.ndarray
    seen_buckets: np.ndarray
    unseen_features: np.ndarray
    unseen_groups: np.ndarray
    unseen_buckets: np.ndarray
    num_buckets: int

    def bucket_summary(self) -> Dict[int, int]:
        """Number of seen elements mapped to each bucket."""
        unique, counts = np.unique(self.seen_buckets, return_counts=True)
        return {int(bucket): int(count) for bucket, count in zip(unique, counts)}


def run_visualization_experiment(
    num_groups: int = 10,
    fraction_seen: float = 0.33,
    prefix_length: int = 1000,
    num_buckets: int = 10,
    lam: float = 0.5,
    classifier: str = "cart",
    seed: Optional[int] = 0,
) -> VisualizationResult:
    """Reproduce Figure 1: learn a hash code and predict one for unseen elements."""
    generator = _make_generator(num_groups, fraction_seen, seed)
    prefix = generator.generate_prefix(prefix_length)
    training, _ = _train(
        prefix, num_buckets, lam, solver="bcd", seed=seed, classifier=classifier
    )

    seen_keys = training.stored_keys
    seen_features = training.stored_features
    seen_groups = np.array([generator.group_of(key) for key in seen_keys])
    seen_buckets = training.solver_result.assignment.labels

    seen_key_set = set(seen_keys)
    unseen = [
        element for element in generator.universe if element.key not in seen_key_set
    ]
    unseen_features = np.array([element.feature_array() for element in unseen])
    unseen_groups = np.array([generator.group_of(element.key) for element in unseen])
    unseen_buckets = training.scheme.predict_buckets(unseen)

    return VisualizationResult(
        seen_features=seen_features,
        seen_groups=seen_groups,
        seen_frequencies=training.stored_frequencies,
        seen_buckets=seen_buckets,
        unseen_features=unseen_features,
        unseen_groups=unseen_groups,
        unseen_buckets=unseen_buckets,
        num_buckets=num_buckets,
    )


# ----------------------------------------------------------------------
# Figure 2 (Experiment 1): impact of lambda, milp vs bcd vs dp
# ----------------------------------------------------------------------
def run_lambda_sweep(
    lambdas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    solvers: Sequence[str] = ("bcd", "dp", "milp"),
    num_groups: int = 6,
    fraction_seen: float = 0.5,
    num_buckets: int = 10,
    prefix_length: Optional[int] = None,
    max_stored_elements: Optional[int] = None,
    num_repetitions: int = 3,
    milp_options: Optional[Dict] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 2: prefix errors and runtime as a function of λ.

    The errors are reported in absolute (not per-element) scale, exactly as
    the paper does for this experiment so the sub-optimality of bcd relative
    to milp is visible.
    """
    result = ExperimentResult(
        name="Figure 2 / Experiment 1: impact of lambda",
        x_label="lambda",
        metadata={
            "num_groups": num_groups,
            "num_buckets": num_buckets,
            "solvers": list(solvers),
            "num_repetitions": num_repetitions,
        },
    )
    milp_options = milp_options or {"time_limit": 20.0, "node_limit": 200}
    for lam in lambdas:
        per_solver: Dict[str, Dict[str, List[float]]] = {
            solver: {"estimation": [], "similarity": [], "overall": [], "time": []}
            for solver in solvers
        }
        for repetition in range(num_repetitions):
            rep_seed = seed + repetition
            generator = _make_generator(num_groups, fraction_seen, rep_seed)
            prefix = generator.generate_prefix(prefix_length)
            for solver in solvers:
                options = dict(milp_options) if solver == "milp" else {}
                training, elapsed = _train(
                    prefix,
                    num_buckets,
                    lam,
                    solver=solver,
                    seed=rep_seed,
                    classifier=None,
                    solver_options=options,
                    max_stored_elements=max_stored_elements,
                )
                objective = evaluate_assignment(
                    training.stored_frequencies,
                    training.stored_features,
                    training.solver_result.assignment,
                    lam,
                )
                per_solver[solver]["estimation"].append(objective.estimation)
                per_solver[solver]["similarity"].append(objective.similarity)
                per_solver[solver]["overall"].append(objective.overall)
                per_solver[solver]["time"].append(elapsed)
        for solver in solvers:
            result.add_point("prefix_estimation_error", solver, lam, per_solver[solver]["estimation"])
            result.add_point("prefix_similarity_error", solver, lam, per_solver[solver]["similarity"])
            result.add_point("prefix_overall_error", solver, lam, per_solver[solver]["overall"])
            result.add_point("elapsed_time", solver, lam, per_solver[solver]["time"])
    return result


# ----------------------------------------------------------------------
# Figure 3 (Experiment 2): bcd vs dp in the lambda = 1 case
# ----------------------------------------------------------------------
def run_bcd_vs_dp(
    group_range: Sequence[int] = (4, 6, 8, 10),
    fraction_seen: float = 0.5,
    num_buckets: int = 10,
    num_repetitions: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 3: per-element errors of bcd vs (optimal) dp at λ=1."""
    result = ExperimentResult(
        name="Figure 3 / Experiment 2: bcd vs dp at lambda = 1",
        x_label="num_groups",
        metadata={"num_buckets": num_buckets, "num_repetitions": num_repetitions},
    )
    for num_groups in group_range:
        per_solver = {
            solver: {"estimation": [], "similarity": [], "overall": [], "time": []}
            for solver in ("bcd", "dp")
        }
        for repetition in range(num_repetitions):
            rep_seed = seed + repetition
            generator = _make_generator(num_groups, fraction_seen, rep_seed)
            prefix = generator.generate_prefix()
            for solver in ("bcd", "dp"):
                training, elapsed = _train(
                    prefix, num_buckets, 1.0, solver=solver, seed=rep_seed, classifier=None
                )
                assignment = training.solver_result.assignment
                frequencies = training.stored_frequencies
                features = training.stored_features
                estimation = estimation_error(frequencies, assignment, per_element=True)
                similarity = similarity_error(features, assignment, per_pair=True)
                per_solver[solver]["estimation"].append(estimation)
                per_solver[solver]["similarity"].append(similarity)
                per_solver[solver]["overall"].append(estimation)  # lambda = 1
                per_solver[solver]["time"].append(elapsed)
        for solver in ("bcd", "dp"):
            result.add_point("prefix_estimation_error", solver, num_groups, per_solver[solver]["estimation"])
            result.add_point("prefix_similarity_error", solver, num_groups, per_solver[solver]["similarity"])
            result.add_point("prefix_overall_error", solver, num_groups, per_solver[solver]["overall"])
            result.add_point("elapsed_time", solver, num_groups, per_solver[solver]["time"])
    return result


# ----------------------------------------------------------------------
# Figure 4 (Experiment 3): bcd stability across random restarts
# ----------------------------------------------------------------------
def run_bcd_stability(
    group_range: Sequence[int] = (4, 6, 8, 10),
    lam: float = 0.5,
    fraction_seen: float = 0.5,
    num_buckets: int = 10,
    num_starts: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 4: variability of bcd across random initializations.

    One problem instance per group count; ``num_starts`` independent bcd runs
    on it.  The standard deviations of the reported errors quantify the
    stability the paper observes.
    """
    result = ExperimentResult(
        name="Figure 4 / Experiment 3: bcd from multiple starting points",
        x_label="num_groups",
        metadata={"lam": lam, "num_starts": num_starts, "num_buckets": num_buckets},
    )
    for num_groups in group_range:
        generator = _make_generator(num_groups, fraction_seen, seed + num_groups)
        prefix = generator.generate_prefix()
        estimations, similarities, overalls, times = [], [], [], []
        for start in range(num_starts):
            training, elapsed = _train(
                prefix,
                num_buckets,
                lam,
                solver="bcd",
                seed=seed + 1000 * start + num_groups,
                classifier=None,
            )
            assignment = training.solver_result.assignment
            frequencies = training.stored_frequencies
            features = training.stored_features
            estimation = estimation_error(frequencies, assignment, per_element=True)
            similarity = similarity_error(features, assignment, per_pair=True)
            estimations.append(estimation)
            similarities.append(similarity)
            overalls.append(lam * estimation + (1 - lam) * similarity)
            times.append(elapsed)
        result.add_point("prefix_estimation_error", "bcd", num_groups, estimations)
        result.add_point("prefix_similarity_error", "bcd", num_groups, similarities)
        result.add_point("prefix_overall_error", "bcd", num_groups, overalls)
        result.add_point("elapsed_time", "bcd", num_groups, times)
    return result


# ----------------------------------------------------------------------
# Figure 5 (Experiment 4): impact of the fraction of elements seen
# ----------------------------------------------------------------------
def run_fraction_seen(
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    num_groups: int = 10,
    num_buckets: int = 10,
    prefix_length: Optional[int] = None,
    stream_multiplier: int = 10,
    classifier: str = "cart",
    num_repetitions: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 5: errors on seen and unseen elements vs ``g0``.

    ``bcd`` runs with λ=0.5 and ``dp`` with λ=1, as in the paper.
    """
    result = ExperimentResult(
        name="Figure 5 / Experiment 4: impact of fraction seen in the prefix",
        x_label="fraction_seen",
        metadata={"num_groups": num_groups, "num_buckets": num_buckets},
    )
    solver_lams = {"bcd": 0.5, "dp": 1.0}
    for fraction in fractions:
        per_solver = {
            solver: {
                "prefix_estimation": [],
                "prefix_similarity": [],
                "unseen_estimation": [],
                "unseen_similarity": [],
            }
            for solver in solver_lams
        }
        for repetition in range(num_repetitions):
            rep_seed = seed + repetition
            generator = _make_generator(num_groups, fraction, rep_seed)
            prefix, stream = generator.generate_prefix_and_stream(
                prefix_length=prefix_length, stream_multiplier=stream_multiplier
            )
            for solver, lam in solver_lams.items():
                training, _ = _train(
                    prefix, num_buckets, lam, solver=solver, seed=rep_seed, classifier=classifier
                )
                assignment = training.solver_result.assignment
                frequencies = training.stored_frequencies
                features = training.stored_features
                per_solver[solver]["prefix_estimation"].append(
                    estimation_error(frequencies, assignment, per_element=True)
                )
                per_solver[solver]["prefix_similarity"].append(
                    similarity_error(features, assignment, per_pair=True)
                )
                unseen_estimation, unseen_similarity = _unseen_assignment_errors(
                    training, prefix, stream
                )
                per_solver[solver]["unseen_estimation"].append(unseen_estimation)
                per_solver[solver]["unseen_similarity"].append(unseen_similarity)
        for solver in solver_lams:
            result.add_point("prefix_estimation_error", solver, fraction, per_solver[solver]["prefix_estimation"])
            result.add_point("prefix_similarity_error", solver, fraction, per_solver[solver]["prefix_similarity"])
            result.add_point("unseen_estimation_error", solver, fraction, per_solver[solver]["unseen_estimation"])
            result.add_point("unseen_similarity_error", solver, fraction, per_solver[solver]["unseen_similarity"])
    return result


# ----------------------------------------------------------------------
# Figure 6 (Experiment 5): comparison between classification methods
# ----------------------------------------------------------------------
def run_classifier_comparison(
    group_range: Sequence[int] = (4, 6, 8),
    classifiers: Sequence[str] = ("logreg", "cart", "rf"),
    fraction_seen: float = 0.33,
    lam: float = 0.5,
    num_buckets: int = 10,
    prefix_length: Optional[int] = None,
    stream_multiplier: int = 10,
    num_repetitions: int = 3,
    classifier_options: Optional[Dict[str, Dict]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce Figure 6: unseen-element errors for logreg / cart / rf."""
    result = ExperimentResult(
        name="Figure 6 / Experiment 5: comparison between classification methods",
        x_label="num_groups",
        metadata={"lam": lam, "fraction_seen": fraction_seen},
    )
    classifier_options = classifier_options or {}
    for num_groups in group_range:
        per_classifier = {
            name: {"estimation": [], "similarity": [], "overall": [], "time": []}
            for name in classifiers
        }
        for repetition in range(num_repetitions):
            rep_seed = seed + repetition
            generator = _make_generator(num_groups, fraction_seen, rep_seed)
            prefix, stream = generator.generate_prefix_and_stream(
                prefix_length=prefix_length, stream_multiplier=stream_multiplier
            )
            for name in classifiers:
                spec = OptHashSpec(
                    num_buckets=num_buckets,
                    lam=lam,
                    solver="bcd",
                    classifier=name,
                    classifier_options=classifier_options.get(name, {}),
                    seed=rep_seed,
                )
                start = time.monotonic()
                training = train(spec, prefix)
                elapsed = time.monotonic() - start
                unseen_estimation, unseen_similarity = _unseen_assignment_errors(
                    training, prefix, stream
                )
                per_classifier[name]["estimation"].append(unseen_estimation)
                per_classifier[name]["similarity"].append(unseen_similarity)
                per_classifier[name]["overall"].append(
                    lam * unseen_estimation + (1 - lam) * unseen_similarity
                )
                per_classifier[name]["time"].append(elapsed)
        for name in classifiers:
            result.add_point("unseen_estimation_error", name, num_groups, per_classifier[name]["estimation"])
            result.add_point("unseen_similarity_error", name, num_groups, per_classifier[name]["similarity"])
            result.add_point("unseen_overall_error", name, num_groups, per_classifier[name]["overall"])
            result.add_point("elapsed_time", name, num_groups, per_classifier[name]["time"])
    return result
