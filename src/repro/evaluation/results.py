"""Result containers for the experiment runners.

Every runner returns an :class:`ExperimentResult`: a named collection of
series, each a list of ``(x, mean, std)`` points — the exact quantities the
paper's figures plot (each experiment is repeated and the mean ± standard
deviation is reported).  ``render()`` prints them as aligned text tables so
the benchmark harness can show the same rows the figures encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["SeriesPoint", "ExperimentResult"]


@dataclass(frozen=True)
class SeriesPoint:
    """One point of a plotted series: x value, mean and standard deviation."""

    x: float
    mean: float
    std: float = 0.0


@dataclass
class ExperimentResult:
    """A named experiment with one or more series of points.

    Attributes
    ----------
    name:
        Human-readable experiment name (e.g. ``"Figure 2: impact of lambda"``).
    x_label:
        Name of the swept parameter (x axis of the paper's figure).
    metrics:
        Mapping ``metric name -> {series name -> [SeriesPoint, ...]}``.
        A metric corresponds to one panel of the figure; a series to one line.
    metadata:
        Free-form extra information (problem sizes, parameters used, ...).
    """

    name: str
    x_label: str
    metrics: Dict[str, Dict[str, List[SeriesPoint]]] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_point(
        self, metric: str, series: str, x: float, values: Sequence[float]
    ) -> None:
        """Record the repetitions of one (metric, series, x) cell."""
        values = np.asarray(list(values), dtype=float)
        if values.size == 0:
            raise ValueError("cannot add a point with no values")
        point = SeriesPoint(x=float(x), mean=float(values.mean()), std=float(values.std()))
        self.metrics.setdefault(metric, {}).setdefault(series, []).append(point)

    def series(self, metric: str, series: str) -> List[SeriesPoint]:
        """The points of one series, in insertion (x) order."""
        return list(self.metrics[metric][series])

    def series_means(self, metric: str, series: str) -> List[float]:
        return [point.mean for point in self.series(metric, series)]

    def render(self, float_format: str = "{:.4g}") -> str:
        """Render all metrics as aligned text tables (one per figure panel)."""
        lines: List[str] = [f"=== {self.name} ==="]
        for metric, series_map in self.metrics.items():
            lines.append(f"-- {metric} --")
            series_names = list(series_map)
            xs = sorted({point.x for points in series_map.values() for point in points})
            header = [self.x_label] + [
                column
                for name in series_names
                for column in (f"{name} (mean)", f"{name} (std)")
            ]
            rows = [header]
            for x in xs:
                row = [float_format.format(x)]
                for name in series_names:
                    match = [p for p in series_map[name] if p.x == x]
                    if match:
                        row.extend(
                            [float_format.format(match[0].mean), float_format.format(match[0].std)]
                        )
                    else:
                        row.extend(["-", "-"])
                rows.append(row)
            widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
            for row in rows:
                lines.append(
                    "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
                )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
