"""Bloom filter (Bloom, 1970).

Used by the adaptive counting extension of the proposed estimator (Section
5.3): the filter remembers which elements have already been observed so the
per-bucket *element counts* are only incremented on first occurrence.
False positives make the extension overestimate frequencies slightly, exactly
as the paper discusses — the filter never produces false negatives.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional

import numpy as np

from repro.api.registry import register_estimator
from repro.core.storage import STORAGE_SCHEMA, StorageBacked, check_storage_params
from repro.kernels import BACKEND_SCHEMA, KernelDispatch
from repro.sketches.base import (
    IncompatibleSketchError,
    describe_estimator,
    describe_repr,
)
from repro.sketches.hashing import (
    UniversalHashFamily,
    hash_functions_equal,
    hash_functions_from_state,
    hash_functions_state,
)
from repro.sketches.serialization import (
    SerializationError,
    pack,
    register_sketch,
    unpack,
)

__all__ = ["BloomFilter"]


@register_estimator(
    "bloom",
    schema={
        "num_bits": {"type": "int", "min": 1, "required": True},
        "num_hashes": {"type": "int", "min": 1, "nullable": True},
        "expected_items": {"type": "int", "min": 1, "nullable": True},
        "seed": {"type": "int", "nullable": True},
        "hash_scheme": {"type": "str", "choices": ("universal", "tabulation")},
        **STORAGE_SCHEMA,
        **BACKEND_SCHEMA,
    },
    check=check_storage_params,
)
@register_sketch("bloom")
class BloomFilter(KernelDispatch, StorageBacked):
    """A standard Bloom filter over arbitrary hashable keys.

    Parameters
    ----------
    num_bits:
        Size of the bit array (``m``).
    num_hashes:
        Number of hash functions (``k``).  If omitted, it is chosen optimally
        for ``expected_items`` insertions.
    expected_items:
        Expected number of distinct insertions; used to pick ``k`` when it is
        not given explicitly.
    seed:
        Seed for the hash functions.
    """

    _STORAGE_FIELD = "_bits"

    def __init__(
        self,
        num_bits: int,
        num_hashes: Optional[int] = None,
        expected_items: Optional[int] = None,
        seed: Optional[int] = None,
        hash_scheme: str = "universal",
        storage: str = "dense",
        storage_path: Optional[str] = None,
        backend: str = "auto",
    ) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes is None:
            if expected_items is None or expected_items <= 0:
                num_hashes = 3
            else:
                num_hashes = max(1, round(math.log(2) * num_bits / expected_items))
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.seed = seed
        self.hash_scheme = hash_scheme
        self._init_storage((num_bits,), bool, storage, storage_path)
        self._hashes = UniversalHashFamily(
            num_bits, seed=seed, scheme=hash_scheme
        ).draw(num_hashes)
        self._init_kernels(backend)
        self._num_inserted = 0

    @classmethod
    def from_false_positive_rate(
        cls,
        expected_items: int,
        false_positive_rate: float,
        seed: Optional[int] = None,
        backend: str = "auto",
    ) -> "BloomFilter":
        """Size the filter for a target false-positive rate after ``n`` inserts."""
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not 0 < false_positive_rate < 1:
            raise ValueError("false_positive_rate must lie in (0, 1)")
        num_bits = math.ceil(
            -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
        )
        num_hashes = max(1, round(math.log(2) * num_bits / expected_items))
        return cls(num_bits=num_bits, num_hashes=num_hashes, seed=seed, backend=backend)

    def add(self, key: Hashable) -> None:
        """Mark ``key`` as seen."""
        for h in self._hashes:
            self._bits[h(key)] = True
        self._num_inserted += 1

    def __contains__(self, key: Hashable) -> bool:
        return all(self._bits[h(key)] for h in self._hashes)

    def contains(self, key: Hashable) -> bool:
        """Membership test; false positives possible, false negatives not."""
        return key in self

    # ------------------------------------------------------------------
    # vectorized batch path (runs on the configured kernel backend)
    # ------------------------------------------------------------------
    @staticmethod
    def _as_batch(keys):
        """Materialize a key batch (arrays pass through, iterables listify)."""
        return keys if isinstance(keys, np.ndarray) else list(keys)

    def add_batch(self, keys) -> None:
        """Mark every key of the batch as seen (one gather/scatter per hash)."""
        batch = self._as_batch(keys)
        if len(batch) == 0:
            return
        self._kernel.bloom_add(self._bits, self._plan, batch)
        self._num_inserted += len(batch)

    def contains_batch(self, keys) -> np.ndarray:
        """Vectorized membership test: a bool array aligned with ``keys``."""
        batch = self._as_batch(keys)
        if len(batch) == 0:
            return np.zeros(0, dtype=bool)
        return self._kernel.bloom_contains(self._bits, self._plan, batch)

    def observe_batch(self, keys) -> np.ndarray:
        """Process arrivals in order; return True where the key was *new*.

        Equivalent to ``if k not in self: add(k)`` per arrival — later
        occurrences of a key within the same batch see the bits its first
        occurrence set, exactly as a scalar replay would.  Used by the
        adaptive opt-hash estimator's first-occurrence counting.
        """
        batch = self._as_batch(keys)
        if len(batch) == 0:
            return np.zeros(0, dtype=bool)
        new_flags = self._kernel.bloom_observe(self._bits, self._plan, batch)
        self._num_inserted += int(new_flags.sum())
        return new_flags

    @property
    def num_inserted(self) -> int:
        """Number of ``add`` calls (not necessarily distinct keys)."""
        return self._num_inserted

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array, in bytes (rounded up)."""
        return (self.num_bits + 7) // 8

    def estimated_false_positive_rate(self) -> float:
        """Estimate the current false-positive probability from the fill ratio."""
        fill = float(self._bits.mean())
        return fill ** self.num_hashes

    def _describe_params(self) -> dict:
        params = {
            "num_bits": self.num_bits,
            "num_hashes": self.num_hashes,
            "seed": self.seed,
            "hash_scheme": self.hash_scheme,
        }
        if self.storage_backend != "dense":
            params["storage"] = self.storage_backend
        params.update(self._backend_describe_params())
        return params

    def describe(self) -> dict:
        """Kind, parameters (resolved ``num_hashes``), seed and size_bytes."""
        return describe_estimator(self, self._describe_params())

    def __repr__(self) -> str:
        return describe_repr(self)

    # ------------------------------------------------------------------
    # merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "BloomFilter") -> "BloomFilter":
        """Union another filter's bits into this one (bitwise OR).

        With shared hash functions the union is exactly the filter a single
        instance would hold after ``add``-ing both key sets: no false
        negatives are ever introduced.  ``num_inserted`` adds the two
        insertion counts, which double-counts keys both filters saw — it is
        an ``add``-call counter, not a distinct-key estimate.
        """
        if not isinstance(other, BloomFilter):
            raise IncompatibleSketchError(
                f"cannot merge BloomFilter with {type(other).__name__}"
            )
        if (self.num_bits, self.num_hashes) != (other.num_bits, other.num_hashes):
            raise IncompatibleSketchError(
                f"shape mismatch: ({self.num_bits}, {self.num_hashes}) vs "
                f"({other.num_bits}, {other.num_hashes})"
            )
        if not hash_functions_equal(self._hashes, other._hashes):
            raise IncompatibleSketchError(
                "hash functions differ (filters must be built from the same "
                "seed and hash scheme to be mergeable)"
            )
        self._bits |= other._bits
        self._num_inserted += other._num_inserted
        return self

    def to_bytes(self, *, live: bool = False) -> bytes:
        if live:
            # The bit table rides the mmap file, but num_inserted is scalar
            # state outside it: a live (by-reference) snapshot would freeze
            # the counter while the bits keep mutating, restoring an
            # inconsistent filter.  Only embedded snapshots are sound.
            raise SerializationError(
                "BloomFilter cannot take live (zero-copy) snapshots: "
                "num_inserted lives outside the bits table; use an embedded "
                "snapshot (to_bytes() / Session.snapshot(embed=True))"
            )
        hash_states, arrays = hash_functions_state(self._hashes)
        state = {
            "num_bits": self.num_bits,
            "num_hashes": self.num_hashes,
            "num_inserted": self._num_inserted,
            "seed": self.seed,
            "hash_scheme": self.hash_scheme,
        }
        state["hashes"] = hash_states
        state.update(self._backend_serial_state())
        state.update(self._storage_serial_state(live))
        if not live:
            # 8x smaller on the wire than the bool array the filter works on.
            arrays["bits"] = np.packbits(self._bits)
        return pack("bloom", state, arrays)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        storage: Optional[str] = None,
        storage_path: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "BloomFilter":
        _, state, arrays = unpack(data, expect_tag="bloom")
        sketch = cls.__new__(cls)
        sketch.num_bits = int(state["num_bits"])
        sketch.num_hashes = int(state["num_hashes"])
        sketch.seed = state.get("seed")
        sketch.hash_scheme = state.get("hash_scheme", "universal")
        sketch._num_inserted = int(state["num_inserted"])
        bits = None
        if "bits" in arrays:
            bits = np.unpackbits(arrays["bits"])[: sketch.num_bits].astype(bool)
        sketch._restore_storage(
            state,
            bits,
            (sketch.num_bits,),
            bool,
            storage=storage,
            storage_path=storage_path,
        )
        sketch._hashes = hash_functions_from_state(state["hashes"], arrays)
        requested = backend if backend is not None else state.get("backend", "auto")
        sketch._init_kernels(requested, on_unavailable="fallback")
        return sketch
