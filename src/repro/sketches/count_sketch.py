"""Count Sketch (Charikar, Chen & Farach-Colton, 2002).

The other canonical random-hashing frequency sketch the paper discusses.
Unlike Count-Min, every update is multiplied by a random ±1 sign before being
added to the counter, and a point query takes the *median* across levels.
The resulting estimator is unbiased (errors are two-sided) with variance
controlled by ``||f||_2`` rather than ``||f||_1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sketches.base import BYTES_PER_BUCKET, FrequencyEstimator, as_key_batch
from repro.sketches.hashing import UniversalHashFamily
from repro.streams.stream import Element

__all__ = ["CountSketch"]


class CountSketch(FrequencyEstimator):
    """Count Sketch with ``d`` levels of ``w`` signed counters."""

    def __init__(
        self,
        width: int,
        depth: int = 1,
        seed: Optional[int] = None,
        hash_scheme: str = "universal",
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.width = width
        self.depth = depth
        self._table = np.zeros((depth, width), dtype=np.int64)
        family = UniversalHashFamily(width, seed=seed, scheme=hash_scheme)
        self._hashes = family.draw(depth)

    @classmethod
    def from_total_buckets(
        cls, total_buckets: int, depth: int = 1, seed: Optional[int] = None
    ) -> "CountSketch":
        """Build a sketch with ``total_buckets = width * depth`` counters."""
        if total_buckets < depth:
            raise ValueError("total_buckets must be at least depth")
        return cls(width=total_buckets // depth, depth=depth, seed=seed)

    def update(self, element: Element) -> None:
        self.update_batch([element.key])

    def estimate(self, element: Element) -> float:
        return float(self.estimate_batch([element.key])[0])

    # ------------------------------------------------------------------
    # vectorized batch path
    # ------------------------------------------------------------------
    def update_batch(self, keys, counts=None) -> None:
        """Ingest a key batch: signed, order-independent counter increments."""
        key_batch, count_array = as_key_batch(keys, counts)
        if len(key_batch) == 0:
            return
        for level, h in enumerate(self._hashes):
            np.add.at(
                self._table[level],
                h.hash_batch(key_batch),
                h.sign_batch(key_batch) * count_array,
            )

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries: median over levels of signed counters."""
        key_batch, _ = as_key_batch(keys)
        if len(key_batch) == 0:
            return np.zeros(0, dtype=np.float64)
        signed = np.stack(
            [
                h.sign_batch(key_batch) * self._table[level, h.hash_batch(key_batch)]
                for level, h in enumerate(self._hashes)
            ]
        )
        return np.median(signed, axis=0)

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * self.width * self.depth

    @property
    def total_buckets(self) -> int:
        return self.width * self.depth

    def counters(self) -> np.ndarray:
        """Return a copy of the counter table (for inspection/testing)."""
        return self._table.copy()
