"""Count Sketch (Charikar, Chen & Farach-Colton, 2002).

The other canonical random-hashing frequency sketch the paper discusses.
Unlike Count-Min, every update is multiplied by a random ±1 sign before being
added to the counter, and a point query takes the *median* across levels.
The resulting estimator is unbiased (errors are two-sided) with variance
controlled by ``||f||_2`` rather than ``||f||_1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.registry import register_estimator
from repro.core.storage import StorageBacked
from repro.kernels import KernelDispatch
from repro.sketches.base import (
    BYTES_PER_BUCKET,
    FrequencyEstimator,
    IncompatibleSketchError,
    as_key_batch,
)
from repro.sketches.count_min import (
    WIDTH_SKETCH_SCHEMA,
    build_width_sketch,
    require_one_table_size,
)
from repro.sketches.hashing import (
    UniversalHashFamily,
    hash_functions_equal,
    hash_functions_from_state,
    hash_functions_state,
)
from repro.sketches.serialization import pack, register_sketch, unpack
from repro.streams.stream import Element

__all__ = ["CountSketch"]


_COUNT_SKETCH_SCHEMA = {
    name: rule
    for name, rule in WIDTH_SKETCH_SCHEMA.items()
    if name != "conservative"
}


@register_estimator(
    "count_sketch",
    schema=_COUNT_SKETCH_SCHEMA,
    builder=build_width_sketch,
    check=require_one_table_size,
)
@register_sketch("count_sketch")
class CountSketch(KernelDispatch, StorageBacked, FrequencyEstimator):
    """Count Sketch with ``d`` levels of ``w`` signed counters.

    ``storage`` / ``storage_path`` select the counter-table backend (dense /
    shm / mmap), and ``backend`` the kernel backend, exactly as on
    :class:`~repro.sketches.count_min.CountMinSketch`.
    """

    _STORAGE_FIELD = "_table"

    def __init__(
        self,
        width: int,
        depth: int = 1,
        seed: Optional[int] = None,
        hash_scheme: str = "universal",
        storage: str = "dense",
        storage_path: Optional[str] = None,
        backend: str = "auto",
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.hash_scheme = hash_scheme
        self._init_storage((depth, width), np.int64, storage, storage_path)
        family = UniversalHashFamily(width, seed=seed, scheme=hash_scheme)
        self._hashes = family.draw(depth)
        self._init_kernels(backend)

    @classmethod
    def from_total_buckets(
        cls, total_buckets: int, depth: int = 1, seed: Optional[int] = None, **kwargs
    ) -> "CountSketch":
        """Build a sketch with ``total_buckets = width * depth`` counters."""
        if total_buckets < depth:
            raise ValueError("total_buckets must be at least depth")
        return cls(width=total_buckets // depth, depth=depth, seed=seed, **kwargs)

    def update(self, element: Element) -> None:
        key_batch, ones = self._scalar_batch(element.key)
        self._ingest(key_batch, ones)

    def estimate(self, element: Element) -> float:
        return float(self.estimate_batch([element.key])[0])

    # ------------------------------------------------------------------
    # vectorized batch path (runs on the configured kernel backend)
    # ------------------------------------------------------------------
    def _ingest(self, key_batch, count_array) -> None:
        """Ingest a key batch: signed, order-independent counter increments."""
        if len(key_batch) == 0:
            return
        self._kernel.cs_ingest(self._table, self._plan, key_batch, count_array)

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries: median over levels of signed counters."""
        key_batch, _ = as_key_batch(keys)
        if len(key_batch) == 0:
            return np.zeros(0, dtype=np.float64)
        return self._kernel.cs_query(self._table, self._plan, key_batch)

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * self.width * self.depth

    @property
    def total_buckets(self) -> int:
        return self.width * self.depth

    def counters(self) -> np.ndarray:
        """Return a copy of the counter table (for inspection/testing)."""
        return self._table.copy()

    def _describe_params(self) -> dict:
        params = {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "hash_scheme": self.hash_scheme,
        }
        if self.storage_backend != "dense":
            params["storage"] = self.storage_backend
        params.update(self._backend_describe_params())
        return params

    # ------------------------------------------------------------------
    # merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "CountSketch") -> "CountSketch":
        """Add another Count Sketch's signed counters into this one.

        Count Sketch is linear, so the merged table is bit-identical to
        single-sketch ingestion of the concatenated streams.
        """
        if not isinstance(other, CountSketch):
            raise IncompatibleSketchError(
                f"cannot merge CountSketch with {type(other).__name__}"
            )
        if (self.width, self.depth) != (other.width, other.depth):
            raise IncompatibleSketchError(
                f"shape mismatch: ({self.width}, {self.depth}) vs "
                f"({other.width}, {other.depth})"
            )
        if not hash_functions_equal(self._hashes, other._hashes):
            raise IncompatibleSketchError(
                "hash functions differ (sketches must be built from the same "
                "seed and hash scheme to be mergeable)"
            )
        self._table += other._table
        return self

    def to_bytes(self, *, live: bool = False) -> bytes:
        hash_states, arrays = hash_functions_state(self._hashes)
        state = {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "hash_scheme": self.hash_scheme,
            "hashes": hash_states,
        }
        state.update(self._backend_serial_state())
        state.update(self._storage_serial_state(live))
        if not live:
            arrays["table"] = self._table
        return pack("count_sketch", state, arrays)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        storage: Optional[str] = None,
        storage_path: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "CountSketch":
        _, state, arrays = unpack(data, expect_tag="count_sketch")
        sketch = cls.__new__(cls)
        sketch.width = int(state["width"])
        sketch.depth = int(state["depth"])
        sketch.seed = state.get("seed")
        sketch.hash_scheme = state.get("hash_scheme", "universal")
        sketch._restore_storage(
            state,
            arrays.get("table"),
            (sketch.depth, sketch.width),
            np.int64,
            storage=storage,
            storage_path=storage_path,
        )
        sketch._hashes = hash_functions_from_state(state["hashes"], arrays)
        requested = backend if backend is not None else state.get("backend", "auto")
        sketch._init_kernels(requested, on_unavailable="fallback")
        return sketch
