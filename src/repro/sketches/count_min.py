"""Count-Min Sketch (Cormode & Muthukrishnan, 2005).

The conventional baseline of the paper (``count-min``).  The sketch keeps
``d`` levels of ``w`` counters each; every arrival increments one counter per
level (chosen by that level's random hash function) and a point query returns
the minimum of the ``d`` counters the key maps to, which always
*overestimates* the true count.

With ``w = ceil(e / eps)`` and ``d = ceil(ln(1 / delta))`` the estimate error
is at most ``eps * ||f||_1`` with probability at least ``1 - delta``
(Section 2.1 of the paper).

A conservative-update variant is included as a design-choice ablation: it
only raises the counters that are currently equal to the minimum, which can
only tighten the overestimate while keeping the one-sided error guarantee.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.api.registry import register_estimator
from repro.api.specs import SpecError
from repro.core.storage import STORAGE_SCHEMA, StorageBacked, check_storage_params
from repro.kernels import BACKEND_SCHEMA, KernelDispatch
from repro.sketches.base import (
    BYTES_PER_BUCKET,
    FrequencyEstimator,
    IncompatibleSketchError,
    as_key_batch,
)
from repro.sketches.hashing import (
    UniversalHashFamily,
    hash_functions_equal,
    hash_functions_from_state,
    hash_functions_state,
)
from repro.sketches.serialization import pack, register_sketch, unpack
from repro.streams.stream import Element

__all__ = ["CountMinSketch"]


def require_one_table_size(params: dict) -> None:
    """Width-style specs must fix the table by exactly one of the two knobs."""
    if ("width" in params) == ("total_buckets" in params):
        raise SpecError(
            "specify exactly one of 'width' (buckets per level) or "
            "'total_buckets' (width * depth)"
        )
    check_storage_params(params)


def build_width_sketch(cls, spec, context):
    """Shared builder for the width/depth table sketches (CMS, Count Sketch)."""
    params = dict(spec.params)
    total_buckets = params.pop("total_buckets", None)
    if total_buckets is not None:
        return cls.from_total_buckets(total_buckets, **params)
    return cls(**params)


#: Schema shared by the width/depth table sketches; Count Sketch reuses it
#: minus the conservative-update flag.  The ``storage`` fields make the
#: counter-table backend (dense / shm / mmap) spec-selectable.
WIDTH_SKETCH_SCHEMA = {
    "width": {"type": "int", "min": 1},
    "total_buckets": {"type": "int", "min": 1},
    "depth": {"type": "int", "min": 1},
    "seed": {"type": "int", "nullable": True},
    "conservative": {"type": "bool"},
    "hash_scheme": {"type": "str", "choices": ("universal", "tabulation")},
    **STORAGE_SCHEMA,
    **BACKEND_SCHEMA,
}


@register_estimator(
    "count_min",
    schema=WIDTH_SKETCH_SCHEMA,
    builder=build_width_sketch,
    check=require_one_table_size,
)
@register_sketch("count_min")
class CountMinSketch(KernelDispatch, StorageBacked, FrequencyEstimator):
    """Count-Min Sketch with ``d`` levels of ``w`` buckets.

    Parameters
    ----------
    width:
        Number of buckets per level (``w``).
    depth:
        Number of levels (``d``).
    seed:
        Seed for the random hash functions.
    conservative:
        If True, use conservative update (only counters equal to the current
        minimum are incremented).
    hash_scheme:
        ``"universal"`` (Carter–Wegman, default) or ``"tabulation"``.
    storage:
        Where the counter table lives: ``"dense"`` (process-private NumPy
        array, default), ``"shm"`` (named shared-memory segment other
        processes can attach zero-copy), or ``"mmap"`` (file-backed, crash
        recoverable).  Estimates are bit-identical across backends.
    storage_path:
        Backing file for ``storage="mmap"`` (a temp file when omitted).
    backend:
        Kernel backend executing the hot paths: ``"auto"`` (default; fastest
        available), ``"numpy"``, ``"native"``, or ``"numba"``.  All backends
        are bit-identical; see :mod:`repro.kernels`.
    """

    _STORAGE_FIELD = "_table"

    def __init__(
        self,
        width: int,
        depth: int = 1,
        seed: Optional[int] = None,
        conservative: bool = False,
        hash_scheme: str = "universal",
        storage: str = "dense",
        storage_path: Optional[str] = None,
        backend: str = "auto",
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self.seed = seed
        self.hash_scheme = hash_scheme
        self._init_storage((depth, width), np.int64, storage, storage_path)
        family = UniversalHashFamily(width, seed=seed, scheme=hash_scheme)
        self._hashes = family.draw(depth)
        self._init_kernels(backend)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_error_guarantee(
        cls, epsilon: float, delta: float, seed: Optional[int] = None
    ) -> "CountMinSketch":
        """Size the sketch so that ``P(|f̃ - f| > eps*||f||_1) <= delta``."""
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=max(depth, 1), seed=seed)

    @classmethod
    def from_total_buckets(
        cls, total_buckets: int, depth: int = 1, seed: Optional[int] = None, **kwargs
    ) -> "CountMinSketch":
        """Build a sketch with ``total_buckets = width * depth`` counters.

        This is the constructor the error-vs-size experiments use: the memory
        budget fixes the total number of buckets and the depth is a tunable
        hyperparameter.
        """
        if total_buckets < depth:
            raise ValueError("total_buckets must be at least depth")
        width = total_buckets // depth
        return cls(width=width, depth=depth, seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # FrequencyEstimator interface
    # ------------------------------------------------------------------
    def update(self, element: Element) -> None:
        key_batch, ones = self._scalar_batch(element.key)
        self._ingest(key_batch, ones)

    def estimate(self, element: Element) -> float:
        return float(self.estimate_batch([element.key])[0])

    # ------------------------------------------------------------------
    # vectorized batch path (runs on the configured kernel backend)
    # ------------------------------------------------------------------
    def _ingest(self, key_batch, count_array) -> None:
        """Ingest ``counts[i]`` arrivals of ``keys[i]``, all at once.

        The plain variant is order-independent; conservative update reads
        the counters it is about to raise, so every backend replays its
        min/max counter logic in arrival order to stay bit-identical.
        """
        if len(key_batch) == 0:
            return
        self._kernel.cms_ingest(
            self._table, self._plan, key_batch, count_array, self.conservative
        )

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries: min over levels of the gathered counters."""
        key_batch, _ = as_key_batch(keys)
        if len(key_batch) == 0:
            return np.zeros(0, dtype=np.float64)
        return self._kernel.cms_query(self._table, self._plan, key_batch)

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * self.width * self.depth

    @property
    def total_buckets(self) -> int:
        return self.width * self.depth

    def counters(self) -> np.ndarray:
        """Return a copy of the counter table (for inspection/testing)."""
        return self._table.copy()

    def _describe_params(self) -> dict:
        params = {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "conservative": self.conservative,
            "hash_scheme": self.hash_scheme,
        }
        # storage_path is deliberately omitted: a twin rebuilt from these
        # params must not clobber (or share) this sketch's backing file.
        if self.storage_backend != "dense":
            params["storage"] = self.storage_backend
        params.update(self._backend_describe_params())
        return params

    # ------------------------------------------------------------------
    # merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Add another CMS's counters into this one, level by level.

        Count-Min is a linear sketch: the plain variant's merged table is
        *bit-identical* to ingesting the concatenated streams into a single
        sketch, because each counter is just a sum of its arrivals.

        Conservative update is not linear — which counters an arrival raises
        depends on the counter values at that moment, so splitting a stream
        across sketches changes the trajectories.  Summing the tables is
        still sound: each table upper-bounds the counts of its own substream,
        so the sum upper-bounds the whole stream and the one-sided
        (overestimate-only) guarantee survives.  The merged estimates are
        merely allowed to be larger than what single-sketch conservative
        ingestion would have produced.
        """
        if not isinstance(other, CountMinSketch):
            raise IncompatibleSketchError(
                f"cannot merge CountMinSketch with {type(other).__name__}"
            )
        if (self.width, self.depth, self.conservative) != (
            other.width,
            other.depth,
            other.conservative,
        ):
            raise IncompatibleSketchError(
                f"shape/variant mismatch: ({self.width}, {self.depth}, "
                f"conservative={self.conservative}) vs ({other.width}, "
                f"{other.depth}, conservative={other.conservative})"
            )
        if not hash_functions_equal(self._hashes, other._hashes):
            raise IncompatibleSketchError(
                "hash functions differ (sketches must be built from the same "
                "seed and hash scheme to be mergeable)"
            )
        self._table += other._table
        return self

    def to_bytes(self, *, live: bool = False) -> bytes:
        """Serialize; ``live=True`` (mmap only) records the file path instead
        of embedding the table — an O(1) zero-copy snapshot."""
        hash_states, arrays = hash_functions_state(self._hashes)
        state = {
            "width": self.width,
            "depth": self.depth,
            "conservative": self.conservative,
            "seed": self.seed,
            "hash_scheme": self.hash_scheme,
            "hashes": hash_states,
        }
        state.update(self._backend_serial_state())
        state.update(self._storage_serial_state(live))
        if not live:
            arrays["table"] = self._table
        return pack("count_min", state, arrays)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        storage: Optional[str] = None,
        storage_path: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "CountMinSketch":
        """Rehydrate; ``storage=`` loads the buffer onto a different storage
        backend than the one it was serialized from, and ``backend=``
        overrides the serialized kernel-backend choice (bit-identical either
        way).  A serialized compiled-backend choice that is unavailable here
        degrades to NumPy with a ``RuntimeWarning`` instead of failing."""
        _, state, arrays = unpack(data, expect_tag="count_min")
        sketch = cls.__new__(cls)
        sketch.width = int(state["width"])
        sketch.depth = int(state["depth"])
        sketch.conservative = bool(state["conservative"])
        sketch.seed = state.get("seed")
        sketch.hash_scheme = state.get("hash_scheme", "universal")
        sketch._restore_storage(
            state,
            arrays.get("table"),
            (sketch.depth, sketch.width),
            np.int64,
            storage=storage,
            storage_path=storage_path,
        )
        sketch._hashes = hash_functions_from_state(state["hashes"], arrays)
        requested = backend if backend is not None else state.get("backend", "auto")
        sketch._init_kernels(requested, on_unavailable="fallback")
        return sketch
