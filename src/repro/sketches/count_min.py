"""Count-Min Sketch (Cormode & Muthukrishnan, 2005).

The conventional baseline of the paper (``count-min``).  The sketch keeps
``d`` levels of ``w`` counters each; every arrival increments one counter per
level (chosen by that level's random hash function) and a point query returns
the minimum of the ``d`` counters the key maps to, which always
*overestimates* the true count.

With ``w = ceil(e / eps)`` and ``d = ceil(ln(1 / delta))`` the estimate error
is at most ``eps * ||f||_1`` with probability at least ``1 - delta``
(Section 2.1 of the paper).

A conservative-update variant is included as a design-choice ablation: it
only raises the counters that are currently equal to the minimum, which can
only tighten the overestimate while keeping the one-sided error guarantee.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sketches.base import BYTES_PER_BUCKET, FrequencyEstimator
from repro.sketches.hashing import UniversalHashFamily
from repro.streams.stream import Element

__all__ = ["CountMinSketch"]


class CountMinSketch(FrequencyEstimator):
    """Count-Min Sketch with ``d`` levels of ``w`` buckets.

    Parameters
    ----------
    width:
        Number of buckets per level (``w``).
    depth:
        Number of levels (``d``).
    seed:
        Seed for the random hash functions.
    conservative:
        If True, use conservative update (only counters equal to the current
        minimum are incremented).
    """

    def __init__(
        self,
        width: int,
        depth: int = 1,
        seed: Optional[int] = None,
        conservative: bool = False,
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self._table = np.zeros((depth, width), dtype=np.int64)
        family = UniversalHashFamily(width, seed=seed)
        self._hashes = family.draw(depth)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_error_guarantee(
        cls, epsilon: float, delta: float, seed: Optional[int] = None
    ) -> "CountMinSketch":
        """Size the sketch so that ``P(|f̃ - f| > eps*||f||_1) <= delta``."""
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width=width, depth=max(depth, 1), seed=seed)

    @classmethod
    def from_total_buckets(
        cls, total_buckets: int, depth: int = 1, seed: Optional[int] = None, **kwargs
    ) -> "CountMinSketch":
        """Build a sketch with ``total_buckets = width * depth`` counters.

        This is the constructor the error-vs-size experiments use: the memory
        budget fixes the total number of buckets and the depth is a tunable
        hyperparameter.
        """
        if total_buckets < depth:
            raise ValueError("total_buckets must be at least depth")
        width = total_buckets // depth
        return cls(width=width, depth=depth, seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # FrequencyEstimator interface
    # ------------------------------------------------------------------
    def update(self, element: Element) -> None:
        key = element.key
        if self.conservative:
            positions = [h(key) for h in self._hashes]
            current = np.array(
                [self._table[level, pos] for level, pos in enumerate(positions)]
            )
            new_value = current.min() + 1
            for level, pos in enumerate(positions):
                if self._table[level, pos] < new_value:
                    self._table[level, pos] = new_value
        else:
            for level, h in enumerate(self._hashes):
                self._table[level, h(key)] += 1

    def estimate(self, element: Element) -> float:
        key = element.key
        return float(
            min(self._table[level, h(key)] for level, h in enumerate(self._hashes))
        )

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * self.width * self.depth

    @property
    def total_buckets(self) -> int:
        return self.width * self.depth

    def counters(self) -> np.ndarray:
        """Return a copy of the counter table (for inspection/testing)."""
        return self._table.copy()
