"""AMS sketch (Alon, Matias & Szegedy, 1999).

Historically the first sketching algorithm the paper discusses: it estimates
the second frequency moment ``F2 = Σ_u f_u²`` of the stream (the "surprise
number"), which is also the squared L2 norm governing the Count Sketch error
bound.  Each of the ``num_estimators`` counters maintains ``Σ_u s(u)·f_u``
for a random ±1 hash ``s``; squaring gives an unbiased F2 estimate, and
median-of-means over the counters concentrates it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.registry import register_estimator
from repro.api.specs import SpecError
from repro.core.storage import STORAGE_SCHEMA, StorageBacked, check_storage_params
from repro.kernels import BACKEND_SCHEMA, KernelDispatch
from repro.sketches.base import (
    BYTES_PER_BUCKET,
    IncompatibleSketchError,
    as_key_batch,
    describe_estimator,
    describe_repr,
)
from repro.sketches.hashing import (
    UniversalHashFamily,
    hash_functions_equal,
    hash_functions_from_state,
    hash_functions_state,
)
from repro.sketches.serialization import pack, register_sketch, unpack
from repro.streams.stream import Element

__all__ = ["AmsSketch"]


def _check_means_groups(params: dict) -> None:
    groups = params.get("means_groups", 8)
    estimators = params.get("num_estimators", 64)
    if estimators % groups != 0:
        raise SpecError(
            f"means_groups ({groups}) must evenly divide num_estimators "
            f"({estimators})"
        )
    check_storage_params(params)


@register_estimator(
    "ams",
    schema={
        "num_estimators": {"type": "int", "min": 1},
        "means_groups": {"type": "int", "min": 1},
        "seed": {"type": "int", "nullable": True},
        "hash_scheme": {"type": "str", "choices": ("universal", "tabulation")},
        **STORAGE_SCHEMA,
        **BACKEND_SCHEMA,
    },
    check=_check_means_groups,
)
@register_sketch("ams")
class AmsSketch(KernelDispatch, StorageBacked):
    """Estimates the second frequency moment of a stream.

    Parameters
    ----------
    num_estimators:
        Total number of ±1 counters (``means_groups × group_size``).
    means_groups:
        Number of groups used by the median-of-means estimator.
    seed:
        Seed for the sign hashes.
    """

    _STORAGE_FIELD = "_counters"

    def __init__(
        self,
        num_estimators: int = 64,
        means_groups: int = 8,
        seed: Optional[int] = None,
        hash_scheme: str = "universal",
        storage: str = "dense",
        storage_path: Optional[str] = None,
        backend: str = "auto",
    ) -> None:
        if num_estimators <= 0:
            raise ValueError("num_estimators must be positive")
        if means_groups <= 0 or num_estimators % means_groups != 0:
            raise ValueError("means_groups must evenly divide num_estimators")
        self.num_estimators = num_estimators
        self.means_groups = means_groups
        self.seed = seed
        self.hash_scheme = hash_scheme
        self._init_storage((num_estimators,), np.int64, storage, storage_path)
        self._hashes = UniversalHashFamily(
            2, seed=seed, scheme=hash_scheme
        ).draw(num_estimators)
        self._init_kernels(backend)

    def update(self, element: Element) -> None:
        """Process one arrival of ``element``."""
        key = element.key
        for index, h in enumerate(self._hashes):
            self._counters[index] += h.sign(key)

    def update_many(self, elements) -> None:
        """Process a sequence of arrivals (delegates to the batch path)."""
        self.update_batch(elements)

    def update_batch(self, keys, counts=None) -> None:
        """Ingest a key batch: each ±1 counter absorbs its signed sum at once."""
        key_batch, count_array = as_key_batch(keys, counts)
        if len(key_batch) == 0:
            return
        self._kernel.ams_ingest(self._counters, self._plan, key_batch, count_array)

    def estimate_second_moment(self) -> float:
        """Median-of-means estimate of ``F2 = Σ_u f_u²``."""
        squares = self._counters.astype(float) ** 2
        groups = squares.reshape(self.means_groups, -1)
        return float(np.median(groups.mean(axis=1)))

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * self.num_estimators

    def _describe_params(self) -> dict:
        params = {
            "num_estimators": self.num_estimators,
            "means_groups": self.means_groups,
            "seed": self.seed,
            "hash_scheme": self.hash_scheme,
        }
        if self.storage_backend != "dense":
            params["storage"] = self.storage_backend
        params.update(self._backend_describe_params())
        return params

    def describe(self) -> dict:
        """Kind, parameters, seed and size_bytes of this sketch."""
        return describe_estimator(self, self._describe_params())

    def __repr__(self) -> str:
        return describe_repr(self)

    # ------------------------------------------------------------------
    # merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "AmsSketch") -> "AmsSketch":
        """Add another AMS sketch's ±1 counters into this one.

        Each counter is the linear form ``Σ_u s(u)·f_u``, so with shared sign
        hashes the merged counters are bit-identical to single-sketch
        ingestion of the concatenated streams.
        """
        if not isinstance(other, AmsSketch):
            raise IncompatibleSketchError(
                f"cannot merge AmsSketch with {type(other).__name__}"
            )
        if (self.num_estimators, self.means_groups) != (
            other.num_estimators,
            other.means_groups,
        ):
            raise IncompatibleSketchError(
                f"shape mismatch: ({self.num_estimators}, {self.means_groups}) "
                f"vs ({other.num_estimators}, {other.means_groups})"
            )
        if not hash_functions_equal(self._hashes, other._hashes):
            raise IncompatibleSketchError(
                "sign hashes differ (sketches must be built from the same "
                "seed and hash scheme to be mergeable)"
            )
        self._counters += other._counters
        return self

    def to_bytes(self, *, live: bool = False) -> bytes:
        hash_states, arrays = hash_functions_state(self._hashes)
        state = {
            "num_estimators": self.num_estimators,
            "means_groups": self.means_groups,
            "seed": self.seed,
            "hash_scheme": self.hash_scheme,
            "hashes": hash_states,
        }
        state.update(self._backend_serial_state())
        state.update(self._storage_serial_state(live))
        if not live:
            arrays["counters"] = self._counters
        return pack("ams", state, arrays)

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        storage: Optional[str] = None,
        storage_path: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "AmsSketch":
        _, state, arrays = unpack(data, expect_tag="ams")
        sketch = cls.__new__(cls)
        sketch.num_estimators = int(state["num_estimators"])
        sketch.means_groups = int(state["means_groups"])
        sketch.seed = state.get("seed")
        sketch.hash_scheme = state.get("hash_scheme", "universal")
        sketch._restore_storage(
            state,
            arrays.get("counters"),
            (sketch.num_estimators,),
            np.int64,
            storage=storage,
            storage_path=storage_path,
        )
        sketch._hashes = hash_functions_from_state(state["hashes"], arrays)
        requested = backend if backend is not None else state.get("backend", "auto")
        sketch._init_kernels(requested, on_unavailable="fallback")
        return sketch
