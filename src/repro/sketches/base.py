"""Common interface for streaming frequency estimators.

Every estimator in this library — the conventional sketches, the Learned CMS
baseline, and the proposed opt-hash estimator — implements the same small
interface so benchmarks and examples can treat them interchangeably:

* ``update(element)``: process one stream arrival (single pass, constant time).
* ``estimate(element)``: answer a point (count) query.
* ``update_batch(keys, counts)`` / ``estimate_batch(keys)``: the vectorized
  ingestion/query path.  The base class provides a generic element-at-a-time
  fallback so every estimator supports the batch API; the array-backed
  sketches override it with NumPy implementations that are bit-identical to
  the scalar path but orders of magnitude faster.
* ``size_bytes`` / ``size_kb``: memory accounting used by the error-vs-size
  experiments, following the paper's convention of 4 bytes per bucket.

Batch inputs are deliberately permissive: a numpy array of raw keys, a list
of raw keys, a list of :class:`~repro.streams.stream.Element`, or a whole
:class:`~repro.streams.stream.Stream` all work, so replay loops can feed
whatever the stream layer hands them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Tuple, Union

import numpy as np

from repro.api.registry import register_estimator
from repro.sketches.serialization import (
    decode_counts,
    encode_counts,
    pack,
    register_sketch,
    unpack,
)
from repro.streams.stream import Element

__all__ = [
    "FrequencyEstimator",
    "ExactCounter",
    "IncompatibleSketchError",
    "BYTES_PER_BUCKET",
    "as_key_batch",
    "describe_estimator",
    "describe_repr",
]


# Canonical definition lives in repro.errors (common ReproError base);
# this module remains its permanent public import path.
from repro.errors import IncompatibleSketchError  # noqa: E402


def as_key_batch(
    keys, counts=None
) -> Tuple[Union[np.ndarray, list], np.ndarray]:
    """Normalize a batch input into ``(keys, counts)``.

    ``keys`` may be a 1-D numpy array of raw keys, any sequence of raw keys,
    a sequence of :class:`Element`, or a ``Stream``.  The returned keys are
    either an integer ndarray (the fast path) or a plain Python list; the
    returned counts are an int64 array aligned with the keys (all ones when
    ``counts`` is omitted).
    """
    if isinstance(keys, np.ndarray):
        if keys.ndim != 1:
            raise ValueError("key batches must be 1-D")
        if keys.dtype == object and keys.shape[0] and isinstance(keys[0], Element):
            # An object array of Elements must extract keys exactly like a
            # list of Elements would — hashing repr(Element) would silently
            # diverge from the scalar path.
            normalized: Union[np.ndarray, list] = [
                element.key for element in keys.tolist()
            ]
            n = len(normalized)
        else:
            normalized = keys
            n = keys.shape[0]
    else:
        key_list = list(keys)
        if key_list and isinstance(key_list[0], Element):
            key_list = [element.key for element in key_list]
        normalized = key_list
        n = len(key_list)
    if counts is None:
        count_array = np.ones(n, dtype=np.int64)
    else:
        count_array = np.asarray(counts, dtype=np.int64)
        if count_array.shape != (n,):
            raise ValueError("counts must align one-to-one with keys")
        if n and count_array.min() < 0:
            raise ValueError("counts must be non-negative")
    return normalized, count_array

#: Memory charged per counter/bucket, as in Section 7.4 of the paper.
BYTES_PER_BUCKET = 4


def describe_estimator(obj, params: dict) -> dict:
    """Shared ``describe()`` body: kind + parameters + current size.

    ``kind`` is the registry/serialization name when the object has one
    (they are the same string by construction), else the class name.  The
    parameter dict is whatever the object's ``_describe_params`` reports —
    for spec-constructible estimators it round-trips through
    ``SketchSpec(kind, **params)``.
    """
    kind = (
        getattr(obj, "ESTIMATOR_KIND", None)
        or getattr(obj, "SERIAL_TAG", None)
        or type(obj).__name__
    )
    info = {"kind": kind, "params": params, "size_bytes": int(obj.size_bytes)}
    # Runtime placement facts, reported outside params (params must stay
    # spec-round-trippable): which kernel backend executes the hot paths and
    # which storage backend holds the counters.  "auto" may resolve
    # differently per machine, so stats/debug output needs the *resolved*
    # name, not the requested one.
    kernel_backend = getattr(obj, "kernel_backend", None)
    if kernel_backend is not None:
        info["kernel_backend"] = kernel_backend
    storage_backend = getattr(obj, "storage_backend", None)
    if storage_backend is not None:
        info["storage_backend"] = storage_backend
    return info


def _summarize_value(value) -> str:
    """Repr of a parameter value, eliding long collections."""
    if isinstance(value, (list, tuple, set, frozenset)) and len(value) > 6:
        return f"<{len(value)} values>"
    if isinstance(value, dict) and len(value) > 6:
        return f"<{len(value)} entries>"
    return repr(value)


def describe_repr(obj) -> str:
    """Shared ``__repr__`` body rendered from ``describe()``."""
    info = obj.describe()
    rendered = ", ".join(
        f"{name}={_summarize_value(value)}"
        for name, value in info["params"].items()
    )
    return (
        f"{type(obj).__name__}({rendered}) "
        f"[kind={info['kind']}, size_bytes={info['size_bytes']}]"
    )


class FrequencyEstimator(ABC):
    """Abstract base class for single-pass frequency estimators."""

    @abstractmethod
    def update(self, element: Element) -> None:
        """Process the arrival of ``element`` (increment its count by one)."""

    @abstractmethod
    def estimate(self, element: Element) -> float:
        """Return the estimated frequency of ``element``."""

    @property
    @abstractmethod
    def size_bytes(self) -> int:
        """Memory footprint of the estimator state, in bytes."""

    @property
    def size_kb(self) -> float:
        """Memory footprint in kilobytes (1 KB = 1000 bytes, as in the paper)."""
        return self.size_bytes / 1000.0

    def update_many(self, elements) -> None:
        """Process a sequence of arrivals (delegates to the batch path)."""
        self.update_batch(elements)

    def update_batch(self, keys, counts=None) -> None:
        """Process a batch of arrivals: ``counts[i]`` occurrences of ``keys[i]``.

        Normalizes the input once (the only :func:`as_key_batch` call on this
        path) and hands the aligned ``(keys, counts)`` pair to
        :meth:`_ingest`, which subclasses override with their vectorized
        implementations.  The base ``_ingest`` replays element-at-a-time, so
        it is always equivalent to the scalar path.
        """
        key_batch, count_array = as_key_batch(keys, counts)
        self._ingest(key_batch, count_array)

    def _ingest(self, key_batch, count_array: np.ndarray) -> None:
        """Ingest an already-normalized ``(keys, counts)`` pair."""
        for key, count in zip(key_batch, count_array):
            element = Element(key=key)
            for _ in range(int(count)):
                self.update(element)

    def _scalar_batch(self, key: Hashable):
        """A reusable 1-element ``(keys, counts)`` pair for scalar updates.

        Scalar ``update`` wrappers feed this straight into :meth:`_ingest`,
        bypassing :func:`as_key_batch` — one cached list and one cached ones
        array per estimator instead of fresh ndarray allocations on every
        arrival.
        """
        cache = getattr(self, "_scalar_cache", None)
        if cache is None:
            cache = ([None], np.ones(1, dtype=np.int64))
            self._scalar_cache = cache
        cache[0][0] = key
        return cache

    def merge(self, other: "FrequencyEstimator") -> "FrequencyEstimator":
        """Fold another estimator's state into this one, in place.

        After ``a.merge(b)``, ``a`` answers queries as if it had also seen
        every arrival ``b`` ingested (exactly for linear sketches, within the
        summary guarantees for the counter-based ones).  Implementations
        raise :class:`IncompatibleSketchError` when the two estimators do
        not share a configuration (shape, seeds, hash functions).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support merging"
        )

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries: a float64 array aligned with ``keys``."""
        key_batch, _ = as_key_batch(keys)
        return np.fromiter(
            (self.estimate(Element(key=key)) for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    def estimate_key(self, key: Hashable) -> float:
        """Convenience point query by key only (no features)."""
        return self.estimate(Element(key=key))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _describe_params(self) -> dict:
        """Configuration parameters reported by :meth:`describe`.

        Spec-constructible estimators return exactly the parameters that
        rebuild an equivalent (merge-compatible) instance through
        ``repro.api.build({"kind": ..., **params})``.
        """
        return {}

    def describe(self) -> dict:
        """Kind, parameters (incl. seed where applicable) and size_bytes."""
        return describe_estimator(self, self._describe_params())

    def __repr__(self) -> str:
        return describe_repr(self)


@register_estimator("exact_counter", schema={}, seedless=True)
@register_sketch("exact_counter")
class ExactCounter(FrequencyEstimator):
    """Exact per-key counting.

    Not a sublinear-space estimator — it exists as the ground-truth oracle in
    tests and as the trivial upper bound of what any sketch could achieve.
    Its reported size is the number of stored counters times the per-bucket
    cost (ID storage is ignored, so this is a lower bound on its real cost).
    """

    def __init__(self) -> None:
        self._counts: Dict[Hashable, int] = {}

    def update(self, element: Element) -> None:
        self._counts[element.key] = self._counts.get(element.key, 0) + 1

    def _ingest(self, key_batch, count_array) -> None:
        table = self._counts
        for key, count in zip(key_batch, count_array):
            table[key] = table.get(key, 0) + int(count)

    def merge(self, other: "ExactCounter") -> "ExactCounter":
        """Add another counter's exact counts into this one (always exact)."""
        if not isinstance(other, ExactCounter):
            raise IncompatibleSketchError(
                f"cannot merge ExactCounter with {type(other).__name__}"
            )
        table = self._counts
        for key, count in other._counts.items():
            table[key] = table.get(key, 0) + count
        return self

    def to_bytes(self) -> bytes:
        state, arrays = encode_counts(self._counts, "counts")
        return pack("exact_counter", state, arrays)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExactCounter":
        _, state, arrays = unpack(data, expect_tag="exact_counter")
        counter = cls()
        counter._counts = decode_counts(state, arrays, "counts")
        return counter

    def estimate(self, element: Element) -> float:
        return float(self._counts.get(element.key, 0))

    def estimate_batch(self, keys) -> np.ndarray:
        key_batch, _ = as_key_batch(keys)
        table = self._counts
        return np.fromiter(
            (table.get(key, 0) for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * len(self._counts)

    def __len__(self) -> int:
        return len(self._counts)
