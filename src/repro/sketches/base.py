"""Common interface for streaming frequency estimators.

Every estimator in this library — the conventional sketches, the Learned CMS
baseline, and the proposed opt-hash estimator — implements the same small
interface so benchmarks and examples can treat them interchangeably:

* ``update(element)``: process one stream arrival (single pass, constant time).
* ``estimate(element)``: answer a point (count) query.
* ``size_bytes`` / ``size_kb``: memory accounting used by the error-vs-size
  experiments, following the paper's convention of 4 bytes per bucket.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable

from repro.streams.stream import Element

__all__ = ["FrequencyEstimator", "ExactCounter", "BYTES_PER_BUCKET"]

#: Memory charged per counter/bucket, as in Section 7.4 of the paper.
BYTES_PER_BUCKET = 4


class FrequencyEstimator(ABC):
    """Abstract base class for single-pass frequency estimators."""

    @abstractmethod
    def update(self, element: Element) -> None:
        """Process the arrival of ``element`` (increment its count by one)."""

    @abstractmethod
    def estimate(self, element: Element) -> float:
        """Return the estimated frequency of ``element``."""

    @property
    @abstractmethod
    def size_bytes(self) -> int:
        """Memory footprint of the estimator state, in bytes."""

    @property
    def size_kb(self) -> float:
        """Memory footprint in kilobytes (1 KB = 1000 bytes, as in the paper)."""
        return self.size_bytes / 1000.0

    def update_many(self, elements) -> None:
        """Process a sequence of arrivals."""
        for element in elements:
            self.update(element)

    def estimate_key(self, key: Hashable) -> float:
        """Convenience point query by key only (no features)."""
        return self.estimate(Element(key=key))


class ExactCounter(FrequencyEstimator):
    """Exact per-key counting.

    Not a sublinear-space estimator — it exists as the ground-truth oracle in
    tests and as the trivial upper bound of what any sketch could achieve.
    Its reported size is the number of stored counters times the per-bucket
    cost (ID storage is ignored, so this is a lower bound on its real cost).
    """

    def __init__(self) -> None:
        self._counts: Dict[Hashable, int] = {}

    def update(self, element: Element) -> None:
        self._counts[element.key] = self._counts.get(element.key, 0) + 1

    def estimate(self, element: Element) -> float:
        return float(self._counts.get(element.key, 0))

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * len(self._counts)

    def __len__(self) -> int:
        return len(self._counts)
