"""Common interface for streaming frequency estimators.

Every estimator in this library — the conventional sketches, the Learned CMS
baseline, and the proposed opt-hash estimator — implements the same small
interface so benchmarks and examples can treat them interchangeably:

* ``update(element)``: process one stream arrival (single pass, constant time).
* ``estimate(element)``: answer a point (count) query.
* ``update_batch(keys, counts)`` / ``estimate_batch(keys)``: the vectorized
  ingestion/query path.  The base class provides a generic element-at-a-time
  fallback so every estimator supports the batch API; the array-backed
  sketches override it with NumPy implementations that are bit-identical to
  the scalar path but orders of magnitude faster.
* ``size_bytes`` / ``size_kb``: memory accounting used by the error-vs-size
  experiments, following the paper's convention of 4 bytes per bucket.

Batch inputs are deliberately permissive: a numpy array of raw keys, a list
of raw keys, a list of :class:`~repro.streams.stream.Element`, or a whole
:class:`~repro.streams.stream.Stream` all work, so replay loops can feed
whatever the stream layer hands them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Tuple, Union

import numpy as np

from repro.streams.stream import Element

__all__ = [
    "FrequencyEstimator",
    "ExactCounter",
    "BYTES_PER_BUCKET",
    "as_key_batch",
]


def as_key_batch(
    keys, counts=None
) -> Tuple[Union[np.ndarray, list], np.ndarray]:
    """Normalize a batch input into ``(keys, counts)``.

    ``keys`` may be a 1-D numpy array of raw keys, any sequence of raw keys,
    a sequence of :class:`Element`, or a ``Stream``.  The returned keys are
    either an integer ndarray (the fast path) or a plain Python list; the
    returned counts are an int64 array aligned with the keys (all ones when
    ``counts`` is omitted).
    """
    if isinstance(keys, np.ndarray):
        if keys.ndim != 1:
            raise ValueError("key batches must be 1-D")
        if keys.dtype == object and keys.shape[0] and isinstance(keys[0], Element):
            # An object array of Elements must extract keys exactly like a
            # list of Elements would — hashing repr(Element) would silently
            # diverge from the scalar path.
            normalized: Union[np.ndarray, list] = [
                element.key for element in keys.tolist()
            ]
            n = len(normalized)
        else:
            normalized = keys
            n = keys.shape[0]
    else:
        key_list = list(keys)
        if key_list and isinstance(key_list[0], Element):
            key_list = [element.key for element in key_list]
        normalized = key_list
        n = len(key_list)
    if counts is None:
        count_array = np.ones(n, dtype=np.int64)
    else:
        count_array = np.asarray(counts, dtype=np.int64)
        if count_array.shape != (n,):
            raise ValueError("counts must align one-to-one with keys")
        if n and count_array.min() < 0:
            raise ValueError("counts must be non-negative")
    return normalized, count_array

#: Memory charged per counter/bucket, as in Section 7.4 of the paper.
BYTES_PER_BUCKET = 4


class FrequencyEstimator(ABC):
    """Abstract base class for single-pass frequency estimators."""

    @abstractmethod
    def update(self, element: Element) -> None:
        """Process the arrival of ``element`` (increment its count by one)."""

    @abstractmethod
    def estimate(self, element: Element) -> float:
        """Return the estimated frequency of ``element``."""

    @property
    @abstractmethod
    def size_bytes(self) -> int:
        """Memory footprint of the estimator state, in bytes."""

    @property
    def size_kb(self) -> float:
        """Memory footprint in kilobytes (1 KB = 1000 bytes, as in the paper)."""
        return self.size_bytes / 1000.0

    def update_many(self, elements) -> None:
        """Process a sequence of arrivals (delegates to the batch path)."""
        self.update_batch(elements)

    def update_batch(self, keys, counts=None) -> None:
        """Process a batch of arrivals: ``counts[i]`` occurrences of ``keys[i]``.

        The base implementation replays the batch element-at-a-time, so it is
        always equivalent to the scalar path; array-backed sketches override
        it with vectorized implementations.
        """
        key_batch, count_array = as_key_batch(keys, counts)
        for key, count in zip(key_batch, count_array):
            element = Element(key=key)
            for _ in range(int(count)):
                self.update(element)

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries: a float64 array aligned with ``keys``."""
        key_batch, _ = as_key_batch(keys)
        return np.fromiter(
            (self.estimate(Element(key=key)) for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    def estimate_key(self, key: Hashable) -> float:
        """Convenience point query by key only (no features)."""
        return self.estimate(Element(key=key))


class ExactCounter(FrequencyEstimator):
    """Exact per-key counting.

    Not a sublinear-space estimator — it exists as the ground-truth oracle in
    tests and as the trivial upper bound of what any sketch could achieve.
    Its reported size is the number of stored counters times the per-bucket
    cost (ID storage is ignored, so this is a lower bound on its real cost).
    """

    def __init__(self) -> None:
        self._counts: Dict[Hashable, int] = {}

    def update(self, element: Element) -> None:
        self._counts[element.key] = self._counts.get(element.key, 0) + 1

    def update_batch(self, keys, counts=None) -> None:
        key_batch, count_array = as_key_batch(keys, counts)
        table = self._counts
        for key, count in zip(key_batch, count_array):
            table[key] = table.get(key, 0) + int(count)

    def estimate(self, element: Element) -> float:
        return float(self._counts.get(element.key, 0))

    def estimate_batch(self, keys) -> np.ndarray:
        key_batch, _ = as_key_batch(keys)
        table = self._counts
        return np.fromiter(
            (table.get(key, 0) for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    @property
    def size_bytes(self) -> int:
        return BYTES_PER_BUCKET * len(self._counts)

    def __len__(self) -> int:
        return len(self._counts)
