"""Random hash families.

The conventional sketches (Count-Min, Count Sketch, Bloom filter) are all
defined in terms of random hash functions drawn from a universal family.
Because the sketch transform matrix is never materialized, the quality of the
whole construction rests on these hash functions, so they get their own
module with two interchangeable implementations:

* :class:`UniversalHash` — the classic Carter–Wegman multiply-shift scheme
  ``h(x) = ((a*x + b) mod p) mod m`` over a Mersenne prime.
* :class:`TabulationHash` — simple tabulation hashing, which gives stronger
  independence guarantees at the cost of lookup tables.

Both accept arbitrary hashable Python keys: keys are first mapped to 64-bit
integers with a seeded byte-level FNV-1a so that string keys (search queries)
hash consistently across processes — Python's builtin ``hash`` is
intentionally randomized per process and would break reproducibility.

Every hash function also exposes a *batch* path (``fingerprint64_batch``,
``hash_batch``, ``sign_batch``) operating on whole arrays of keys at once.
The batch paths are bit-identical to the scalar ones — integer keys run the
splitmix64 finalizer on ``uint64`` arrays, string/object keys run a
column-parallel FNV-1a over their padded ``repr`` bytes, and the
Carter–Wegman ``(a*x + b) mod p`` step uses an exact 64×64→128-bit
multiply-mod-Mersenne-61 built from 32-bit limbs — so sketches can ingest
millions of elements per second without changing any estimate.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sketches.serialization import (
    SerializationError,
    pack,
    register_sketch,
    unpack,
)

__all__ = [
    "fingerprint64",
    "fingerprint64_batch",
    "UniversalHash",
    "TabulationHash",
    "UniversalHashFamily",
    "hash_functions_state",
    "hash_functions_from_state",
    "hash_functions_equal",
]

_MERSENNE_PRIME = (1 << 61) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

KeyBatch = Union[np.ndarray, Sequence[Hashable]]


def fingerprint64(key: Hashable, seed: int = 0) -> int:
    """Map an arbitrary hashable key to a deterministic 64-bit fingerprint.

    Integers are used directly (mixed with the seed); other keys are
    serialized via ``repr`` and run through FNV-1a.  The result is stable
    across processes, unlike the builtin ``hash``.
    """
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        value = (int(key) ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
        # Final avalanche (splitmix64 finalizer) so nearby integers spread out.
        value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
        value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
        return (value ^ (value >> 31)) & _MASK64
    data = repr(key).encode("utf-8")
    value = (_FNV_OFFSET ^ (seed & _MASK64)) & _MASK64
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _is_int_key(key: Hashable) -> bool:
    """The same dispatch predicate the scalar ``fingerprint64`` uses."""
    return isinstance(key, (int, np.integer)) and not isinstance(key, bool)


def _fingerprint_int_array(keys: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64-convertible array."""
    value = keys.astype(np.uint64, copy=False)
    value = value ^ np.uint64((seed * 0x9E3779B97F4A7C15) & _MASK64)
    value = (value ^ (value >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    value = (value ^ (value >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return value ^ (value >> np.uint64(31))


def _fingerprint_repr_batch(keys: Sequence[Hashable], seed: int) -> np.ndarray:
    """Column-parallel FNV-1a over the UTF-8 ``repr`` bytes of each key.

    The per-key byte strings are packed into one contiguous buffer and the
    FNV recurrence runs once per byte *column*.  Keys are processed in
    length-sorted order so each column only touches the keys that are still
    active — total work and memory stay O(total bytes) even when one key in
    the batch is much longer than the rest (no padded n × max_len matrix).
    """
    encoded = [repr(key).encode("utf-8") for key in keys]
    n = len(encoded)
    lengths = np.fromiter((len(data) for data in encoded), np.int64, n)
    value = np.full(n, (_FNV_OFFSET ^ (seed & _MASK64)) & _MASK64, np.uint64)
    prime = np.uint64(_FNV_PRIME)
    # Length outliers (a 10KB key among 20-byte queries) would each add one
    # near-empty column per byte; the scalar byte loop is faster for them.
    cutoff = max(64, 2 * int(np.percentile(lengths, 95)))
    long_indices = np.flatnonzero(lengths > cutoff)
    for index in long_indices:
        scalar = int(value[index])
        for byte in encoded[index]:
            scalar = ((scalar ^ byte) * _FNV_PRIME) & _MASK64
        value[index] = scalar
    short_order = np.flatnonzero(lengths <= cutoff)
    if short_order.size == 0:
        return value
    short_order = short_order[np.argsort(lengths[short_order], kind="stable")]
    flat = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    offsets = np.concatenate(([0], np.cumsum(lengths[:-1])))
    # first_active[j] = number of short keys with length <= j, i.e. the start
    # of the still-active suffix of `short_order` at column j.
    first_active = np.searchsorted(
        lengths[short_order], np.arange(int(lengths[short_order].max())), side="right"
    )
    for column in range(first_active.shape[0]):
        active = short_order[first_active[column] :]
        value[active] = (
            value[active] ^ flat[offsets[active] + column].astype(np.uint64)
        ) * prime
    return value


def fingerprint64_batch(keys: KeyBatch, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`fingerprint64` over an array/sequence of keys.

    Returns a ``uint64`` array with
    ``fingerprint64_batch(keys)[i] == fingerprint64(keys[i])`` for integer
    and string keys (other key types are normalized via ``ndarray.tolist``
    before hashing, so numpy scalars hash like their Python equivalents).
    """
    if isinstance(keys, np.ndarray) and keys.ndim == 1 and keys.dtype.kind in "iu":
        return _fingerprint_int_array(keys, seed)
    if isinstance(keys, np.ndarray) and keys.ndim == 1:
        key_list = keys.tolist()
    else:
        key_list = list(keys)
    n = len(key_list)
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    int_flags = [_is_int_key(key) for key in key_list]
    if all(int_flags):
        # Mask in Python first: two's-complement wrap of negatives and
        # integers >= 2**63 without tripping numpy's bounds checking.
        arr = np.fromiter(((int(key) & _MASK64) for key in key_list), np.uint64, n)
        return _fingerprint_int_array(arr, seed)
    if not any(int_flags):
        return _fingerprint_repr_batch(key_list, seed)
    # Mixed integer / non-integer batch: rare, fall back to scalar dispatch.
    return np.fromiter((fingerprint64(key, seed) for key in key_list), np.uint64, n)


# ----------------------------------------------------------------------
# exact multiply-mod Mersenne-61 on uint64 arrays
# ----------------------------------------------------------------------
_P61 = np.uint64(_MERSENNE_PRIME)


def _mod_mersenne61(x: np.ndarray) -> np.ndarray:
    """Reduce a uint64 array modulo ``2^61 - 1`` (exact, branch-free)."""
    folded = (x >> np.uint64(61)) + (x & _P61)
    return np.where(folded >= _P61, folded - _P61, folded)


def _mulmod_mersenne61(a: int, x: np.ndarray) -> np.ndarray:
    """Exact ``(a * x) mod (2^61 - 1)`` with ``a < 2^61`` and ``x < 2^61``.

    The 122-bit product never materializes: both operands split into 32-bit
    limbs, and the partial products fold through ``2^61 ≡ 1 (mod p)``
    (hence ``2^64 ≡ 8``) so every intermediate fits in a uint64.
    """
    a_hi = np.uint64(a >> 32)
    a_lo = np.uint64(a & 0xFFFFFFFF)
    x_hi = x >> np.uint64(32)
    x_lo = x & np.uint64(0xFFFFFFFF)
    # a*x = (a_hi*x_hi)*2^64 + (a_hi*x_lo + a_lo*x_hi)*2^32 + a_lo*x_lo
    high = (a_hi * x_hi) << np.uint64(3)  # * 2^64 ≡ * 8, stays < p
    mid = a_hi * x_lo + a_lo * x_hi  # < 2^62
    # mid*2^32 = (mid >> 29)*2^61 + (mid & (2^29-1))*2^32 ≡ fold below
    mid_folded = (mid >> np.uint64(29)) + ((mid & np.uint64(0x1FFFFFFF)) << np.uint64(32))
    low = a_lo * x_lo  # < 2^64, folds via the Mersenne identity
    low_folded = (low >> np.uint64(61)) + (low & _P61)
    return _mod_mersenne61(high + mid_folded + low_folded)


@register_sketch("universal_hash")
class UniversalHash:
    """A single Carter–Wegman universal hash function onto ``[0, range)``."""

    def __init__(self, output_range: int, seed: Optional[int] = None) -> None:
        if output_range <= 0:
            raise ValueError("output_range must be positive")
        self.output_range = output_range
        rng = np.random.default_rng(seed)
        self._a = int(rng.integers(1, _MERSENNE_PRIME))
        self._b = int(rng.integers(0, _MERSENNE_PRIME))
        self._seed = int(rng.integers(0, 2**31))

    def __call__(self, key: Hashable) -> int:
        x = fingerprint64(key, self._seed) % _MERSENNE_PRIME
        return int(((self._a * x + self._b) % _MERSENNE_PRIME) % self.output_range)

    def sign(self, key: Hashable) -> int:
        """A ±1 hash derived from the same function (used by Count Sketch)."""
        x = fingerprint64(key, self._seed ^ 0x5A5A5A5A) % _MERSENNE_PRIME
        return 1 if ((self._a * x + self._b) % _MERSENNE_PRIME) & 1 else -1

    def _carter_wegman_batch(self, keys: KeyBatch, seed: int) -> np.ndarray:
        """Vectorized ``(a*x + b) mod p`` for a whole batch of keys."""
        x = _mod_mersenne61(fingerprint64_batch(keys, seed))
        value = _mulmod_mersenne61(self._a, x) + np.uint64(self._b)
        return np.where(value >= _P61, value - _P61, value)

    def hash_batch(self, keys: KeyBatch) -> np.ndarray:
        """Vectorized ``__call__``: ``hash_batch(keys)[i] == self(keys[i])``."""
        value = self._carter_wegman_batch(keys, self._seed)
        return (value % np.uint64(self.output_range)).astype(np.int64)

    def sign_batch(self, keys: KeyBatch) -> np.ndarray:
        """Vectorized ``sign``: an int64 array of ±1."""
        value = self._carter_wegman_batch(keys, self._seed ^ 0x5A5A5A5A)
        return np.where(value & np.uint64(1), np.int64(1), np.int64(-1))

    # ------------------------------------------------------------------
    # state / serialization
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """The full drawn state: enough to reproduce every hash value."""
        return {
            "kind": "universal",
            "output_range": self.output_range,
            "a": self._a,
            "b": self._b,
            "seed": self._seed,
        }

    @classmethod
    def from_state(
        cls, state: dict, tables: Optional[np.ndarray] = None
    ) -> "UniversalHash":
        """Rebuild a hash function from :meth:`state` without redrawing."""
        if state.get("kind") != "universal":
            raise SerializationError(f"not a universal-hash state: {state!r}")
        function = cls.__new__(cls)
        function.output_range = int(state["output_range"])
        function._a = int(state["a"])
        function._b = int(state["b"])
        function._seed = int(state["seed"])
        return function

    def to_bytes(self) -> bytes:
        return pack("universal_hash", self.state(), {})

    @classmethod
    def from_bytes(cls, data: bytes) -> "UniversalHash":
        _, state, _ = unpack(data, expect_tag="universal_hash")
        return cls.from_state(state)


@register_sketch("tabulation_hash")
class TabulationHash:
    """Simple tabulation hashing onto ``[0, range)``.

    The 64-bit fingerprint of the key is split into 8 bytes; each byte
    indexes a table of random 64-bit values which are XOR-ed together.
    """

    _NUM_TABLES = 8

    def __init__(self, output_range: int, seed: Optional[int] = None) -> None:
        if output_range <= 0:
            raise ValueError("output_range must be positive")
        self.output_range = output_range
        rng = np.random.default_rng(seed)
        self._tables = rng.integers(
            0, 2**63, size=(self._NUM_TABLES, 256), dtype=np.int64
        ).astype(np.uint64)
        self._seed = int(rng.integers(0, 2**31))

    def __call__(self, key: Hashable) -> int:
        x = fingerprint64(key, self._seed)
        acc = np.uint64(0)
        for table_index in range(self._NUM_TABLES):
            byte = (x >> (8 * table_index)) & 0xFF
            acc ^= self._tables[table_index, byte]
        return int(acc % np.uint64(self.output_range))

    def sign(self, key: Hashable) -> int:
        x = fingerprint64(key, self._seed ^ 0x3C3C3C3C)
        return 1 if x & 1 else -1

    def hash_batch(self, keys: KeyBatch) -> np.ndarray:
        """Vectorized ``__call__`` via one table gather per fingerprint byte."""
        x = fingerprint64_batch(keys, self._seed)
        acc = np.zeros(x.shape, dtype=np.uint64)
        for table_index in range(self._NUM_TABLES):
            byte = ((x >> np.uint64(8 * table_index)) & np.uint64(0xFF)).astype(np.intp)
            acc ^= self._tables[table_index, byte]
        return (acc % np.uint64(self.output_range)).astype(np.int64)

    def sign_batch(self, keys: KeyBatch) -> np.ndarray:
        """Vectorized ``sign``: an int64 array of ±1."""
        x = fingerprint64_batch(keys, self._seed ^ 0x3C3C3C3C)
        return np.where(x & np.uint64(1), np.int64(1), np.int64(-1))

    # ------------------------------------------------------------------
    # state / serialization
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Scalar state; the lookup tables travel separately as an array."""
        return {
            "kind": "tabulation",
            "output_range": self.output_range,
            "seed": self._seed,
        }

    @classmethod
    def from_state(
        cls, state: dict, tables: Optional[np.ndarray] = None
    ) -> "TabulationHash":
        """Rebuild from :meth:`state` plus the ``(8, 256)`` uint64 tables."""
        if state.get("kind") != "tabulation":
            raise SerializationError(f"not a tabulation-hash state: {state!r}")
        if tables is None:
            raise SerializationError("tabulation hash state requires its tables")
        tables = np.asarray(tables, dtype=np.uint64)
        if tables.shape != (cls._NUM_TABLES, 256):
            raise SerializationError(
                f"tabulation tables must have shape ({cls._NUM_TABLES}, 256), "
                f"got {tables.shape}"
            )
        function = cls.__new__(cls)
        function.output_range = int(state["output_range"])
        function._tables = tables.copy()
        function._seed = int(state["seed"])
        return function

    def to_bytes(self) -> bytes:
        return pack("tabulation_hash", self.state(), {"tables": self._tables})

    @classmethod
    def from_bytes(cls, data: bytes) -> "TabulationHash":
        _, state, arrays = unpack(data, expect_tag="tabulation_hash")
        return cls.from_state(state, arrays.get("tables"))


# ----------------------------------------------------------------------
# state helpers for whole hash-function lists (one per sketch level)
# ----------------------------------------------------------------------
def hash_functions_state(
    hashes: Sequence,
) -> Tuple[List[dict], Dict[str, np.ndarray]]:
    """Serialize a list of hash functions into JSON states + stacked tables.

    Tabulation tables are stacked into one ``(n, 8, 256)`` uint64 array under
    the key ``"hash_tables"`` so they travel as a single NumPy buffer.
    """
    states = [function.state() for function in hashes]
    arrays: Dict[str, np.ndarray] = {}
    tables = [
        function._tables for function in hashes if isinstance(function, TabulationHash)
    ]
    if tables:
        arrays["hash_tables"] = np.stack(tables)
    return states, arrays


def hash_functions_from_state(
    states: Sequence[dict], arrays: Dict[str, np.ndarray]
) -> List:
    """Inverse of :func:`hash_functions_state`."""
    functions: List = []
    tables = arrays.get("hash_tables")
    table_index = 0
    for state in states:
        if state.get("kind") == "universal":
            functions.append(UniversalHash.from_state(state))
        elif state.get("kind") == "tabulation":
            if tables is None or table_index >= len(tables):
                raise SerializationError("missing tabulation tables for hash state")
            functions.append(TabulationHash.from_state(state, tables[table_index]))
            table_index += 1
        else:
            raise SerializationError(f"unknown hash kind in state {state!r}")
    return functions


def hash_functions_equal(first: Sequence, second: Sequence) -> bool:
    """Whether two hash-function lists compute identical hash values.

    This is the compatibility predicate behind ``merge``: two sketches may
    only be merged when every level hashes every key to the same position,
    which (given the schemes are deterministic in their drawn state) reduces
    to comparing the drawn states.
    """
    if len(first) != len(second):
        return False
    for a, b in zip(first, second):
        if type(a) is not type(b):
            return False
        if a.state() != b.state():
            return False
        if isinstance(a, TabulationHash) and not np.array_equal(a._tables, b._tables):
            return False
    return True


class UniversalHashFamily:
    """A family of independent hash functions sharing one output range.

    Used to draw the ``d`` per-level hash functions of a sketch from a single
    seed so the whole sketch is reproducible.
    """

    def __init__(
        self,
        output_range: int,
        seed: Optional[int] = None,
        scheme: str = "universal",
    ) -> None:
        if scheme not in ("universal", "tabulation"):
            raise ValueError("scheme must be 'universal' or 'tabulation'")
        self.output_range = output_range
        self.scheme = scheme
        self._rng = np.random.default_rng(seed)

    def draw(self, count: int) -> List:
        """Draw ``count`` independent hash functions."""
        functions = []
        for _ in range(count):
            seed = int(self._rng.integers(0, 2**31))
            if self.scheme == "universal":
                functions.append(UniversalHash(self.output_range, seed=seed))
            else:
                functions.append(TabulationHash(self.output_range, seed=seed))
        return functions
