"""Random hash families.

The conventional sketches (Count-Min, Count Sketch, Bloom filter) are all
defined in terms of random hash functions drawn from a universal family.
Because the sketch transform matrix is never materialized, the quality of the
whole construction rests on these hash functions, so they get their own
module with two interchangeable implementations:

* :class:`UniversalHash` — the classic Carter–Wegman multiply-shift scheme
  ``h(x) = ((a*x + b) mod p) mod m`` over a Mersenne prime.
* :class:`TabulationHash` — simple tabulation hashing, which gives stronger
  independence guarantees at the cost of lookup tables.

Both accept arbitrary hashable Python keys: keys are first mapped to 64-bit
integers with a seeded byte-level FNV-1a so that string keys (search queries)
hash consistently across processes — Python's builtin ``hash`` is
intentionally randomized per process and would break reproducibility.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

import numpy as np

__all__ = ["fingerprint64", "UniversalHash", "TabulationHash", "UniversalHashFamily"]

_MERSENNE_PRIME = (1 << 61) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fingerprint64(key: Hashable, seed: int = 0) -> int:
    """Map an arbitrary hashable key to a deterministic 64-bit fingerprint.

    Integers are used directly (mixed with the seed); other keys are
    serialized via ``repr`` and run through FNV-1a.  The result is stable
    across processes, unlike the builtin ``hash``.
    """
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        value = (int(key) ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
        # Final avalanche (splitmix64 finalizer) so nearby integers spread out.
        value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
        value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
        return (value ^ (value >> 31)) & _MASK64
    data = repr(key).encode("utf-8")
    value = (_FNV_OFFSET ^ (seed & _MASK64)) & _MASK64
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


class UniversalHash:
    """A single Carter–Wegman universal hash function onto ``[0, range)``."""

    def __init__(self, output_range: int, seed: Optional[int] = None) -> None:
        if output_range <= 0:
            raise ValueError("output_range must be positive")
        self.output_range = output_range
        rng = np.random.default_rng(seed)
        self._a = int(rng.integers(1, _MERSENNE_PRIME))
        self._b = int(rng.integers(0, _MERSENNE_PRIME))
        self._seed = int(rng.integers(0, 2**31))

    def __call__(self, key: Hashable) -> int:
        x = fingerprint64(key, self._seed) % _MERSENNE_PRIME
        return int(((self._a * x + self._b) % _MERSENNE_PRIME) % self.output_range)

    def sign(self, key: Hashable) -> int:
        """A ±1 hash derived from the same function (used by Count Sketch)."""
        x = fingerprint64(key, self._seed ^ 0x5A5A5A5A) % _MERSENNE_PRIME
        return 1 if ((self._a * x + self._b) % _MERSENNE_PRIME) & 1 else -1


class TabulationHash:
    """Simple tabulation hashing onto ``[0, range)``.

    The 64-bit fingerprint of the key is split into 8 bytes; each byte
    indexes a table of random 64-bit values which are XOR-ed together.
    """

    _NUM_TABLES = 8

    def __init__(self, output_range: int, seed: Optional[int] = None) -> None:
        if output_range <= 0:
            raise ValueError("output_range must be positive")
        self.output_range = output_range
        rng = np.random.default_rng(seed)
        self._tables = rng.integers(
            0, 2**63, size=(self._NUM_TABLES, 256), dtype=np.int64
        ).astype(np.uint64)
        self._seed = int(rng.integers(0, 2**31))

    def __call__(self, key: Hashable) -> int:
        x = fingerprint64(key, self._seed)
        acc = np.uint64(0)
        for table_index in range(self._NUM_TABLES):
            byte = (x >> (8 * table_index)) & 0xFF
            acc ^= self._tables[table_index, byte]
        return int(acc % np.uint64(self.output_range))

    def sign(self, key: Hashable) -> int:
        x = fingerprint64(key, self._seed ^ 0x3C3C3C3C)
        return 1 if x & 1 else -1


class UniversalHashFamily:
    """A family of independent hash functions sharing one output range.

    Used to draw the ``d`` per-level hash functions of a sketch from a single
    seed so the whole sketch is reproducible.
    """

    def __init__(
        self,
        output_range: int,
        seed: Optional[int] = None,
        scheme: str = "universal",
    ) -> None:
        if scheme not in ("universal", "tabulation"):
            raise ValueError("scheme must be 'universal' or 'tabulation'")
        self.output_range = output_range
        self.scheme = scheme
        self._rng = np.random.default_rng(seed)

    def draw(self, count: int) -> List:
        """Draw ``count`` independent hash functions."""
        functions = []
        for _ in range(count):
            seed = int(self._rng.integers(0, 2**31))
            if self.scheme == "universal":
                functions.append(UniversalHash(self.output_range, seed=seed))
            else:
                functions.append(TabulationHash(self.output_range, seed=seed))
        return functions
