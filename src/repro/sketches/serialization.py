"""Versioned binary serialization for sketches and hash functions.

Every sketch exposes ``to_bytes()`` / ``from_bytes()`` built on the two
helpers here, :func:`pack` and :func:`unpack`.  The wire format is designed
for the sharded ingestion path (process shards round-trip sketch state every
batch), so the bulky parts — counter tables, tabulation tables, Bloom bit
arrays — travel as raw NumPy buffers with zero per-element Python work:

``MAGIC (4) | version u16 | flags u16 | meta_len u32 | meta JSON | array blob``

The JSON metadata carries the class tag, the scalar configuration/state, and
one descriptor per array (name, dtype, shape, byte offset into the blob).
:func:`loads` dispatches on the class tag through a registry populated at
import time by the ``@register_sketch`` decorator, so callers can rehydrate
a sketch without knowing its concrete type in advance.

Malformed input (truncated buffer, bad magic, corrupt metadata, arrays
running past the end) raises :class:`SerializationError`; a buffer written
by a different format version is rejected the same way, never silently
reinterpreted.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Hashable, List, Tuple

import numpy as np

__all__ = [
    "SerializationError",
    "pack",
    "unpack",
    "peek_tag",
    "loads",
    "register_sketch",
    "encode_counts",
    "decode_counts",
    "encode_key",
    "decode_key",
]

MAGIC = b"RPSK"
VERSION = 1
_HEADER = struct.Struct("<4sHHI")  # magic, version, flags, meta_len


# Canonical definition lives in repro.errors (common ReproError base);
# this module remains its permanent public import path.
from repro.errors import SerializationError  # noqa: E402


_REGISTRY: Dict[str, type] = {}


def register_sketch(tag: str):
    """Class decorator registering ``tag`` for :func:`loads` dispatch."""

    def decorate(cls: type) -> type:
        existing = _REGISTRY.get(tag)
        if existing is not None and existing is not cls:
            raise ValueError(f"serialization tag {tag!r} already registered")
        _REGISTRY[tag] = cls
        cls.SERIAL_TAG = tag
        return cls

    return decorate


def pack(tag: str, state: dict, arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialize ``state`` (JSON-able scalars) and ``arrays`` under ``tag``."""
    descriptors: List[dict] = []
    chunks: List[bytes] = []
    offset = 0
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        raw = contiguous.tobytes()
        descriptors.append(
            {
                "name": name,
                "dtype": contiguous.dtype.str,
                "shape": list(contiguous.shape),
                "offset": offset,
                "nbytes": len(raw),
            }
        )
        chunks.append(raw)
        offset += len(raw)
    meta = json.dumps(
        {"tag": tag, "state": state, "arrays": descriptors},
        separators=(",", ":"),
    ).encode("utf-8")
    header = _HEADER.pack(MAGIC, VERSION, 0, len(meta))
    return b"".join([header, meta] + chunks)


def _parse_meta(data: bytes) -> Tuple[dict, int]:
    """Validate the header and parse the JSON metadata (no array work)."""
    if len(data) < _HEADER.size:
        raise SerializationError(
            f"buffer too short for header: {len(data)} < {_HEADER.size} bytes"
        )
    magic, version, _flags, meta_len = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise SerializationError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise SerializationError(
            f"unsupported serialization version {version} (this build reads {VERSION})"
        )
    meta_end = _HEADER.size + meta_len
    if meta_end > len(data):
        raise SerializationError("buffer truncated inside metadata")
    try:
        meta = json.loads(data[_HEADER.size : meta_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SerializationError(f"corrupt metadata: {error}") from error
    if not isinstance(meta, dict) or "tag" not in meta:
        raise SerializationError("metadata is not a sketch descriptor")
    return meta, meta_end


def peek_tag(data: bytes) -> str:
    """The class tag of a packed buffer — header + metadata parse only.

    Cheap dispatch helper: unlike :func:`unpack` it never materializes the
    array blob, so per-batch transport code can route on the tag without
    copying a potentially-large table.
    """
    meta, _ = _parse_meta(bytes(data))
    return meta["tag"]


def unpack(data: bytes, expect_tag: str = None) -> Tuple[str, dict, Dict[str, np.ndarray]]:
    """Parse a :func:`pack` buffer into ``(tag, state, arrays)``.

    The returned arrays are fresh writable copies (``np.frombuffer`` views
    would alias the caller's buffer and be read-only).
    """
    data = bytes(data)
    meta, meta_end = _parse_meta(data)
    tag = meta["tag"]
    if expect_tag is not None and tag != expect_tag:
        raise SerializationError(f"buffer holds a {tag!r}, expected {expect_tag!r}")
    arrays: Dict[str, np.ndarray] = {}
    for descriptor in meta.get("arrays", []):
        try:
            dtype = np.dtype(descriptor["dtype"])
            shape = tuple(int(dim) for dim in descriptor["shape"])
            start = meta_end + int(descriptor["offset"])
            nbytes = int(descriptor["nbytes"])
            name = descriptor["name"]
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"corrupt array descriptor: {error}") from error
        if dtype.kind not in "biufc":
            # Only plain numeric buffers are valid payloads; an object/str
            # dtype smuggled into the metadata must not reach np.frombuffer.
            raise SerializationError(
                f"array {name!r} has non-numeric dtype {dtype.str!r}"
            )
        if start < meta_end or start + nbytes > len(data) or nbytes < 0:
            raise SerializationError(f"array {name!r} runs past the end of the buffer")
        count = int(np.prod(shape)) if shape else 1
        if count * dtype.itemsize != nbytes:
            raise SerializationError(f"array {name!r} shape/dtype disagree with nbytes")
        try:
            arrays[name] = (
                np.frombuffer(data, dtype=dtype, count=count, offset=start)
                .reshape(shape)
                .copy()
            )
        except ValueError as error:
            raise SerializationError(f"corrupt array {name!r}: {error}") from error
    return tag, meta.get("state", {}), arrays


def _import_default_registrations() -> None:
    """Import the modules whose classes register serialization tags."""
    import repro.sketches  # noqa: F401  (sketch + hash tags)
    import repro.core.sharding  # noqa: F401  ("sharded")
    import repro.api.session  # noqa: F401  ("session")
    import repro.temporal  # noqa: F401  ("sliding_window" + "decayed")


def loads(data: bytes, expect_kind: str = None, storage: str = None,
          storage_path: str = None):
    """Rehydrate any registered sketch/estimator from its serialized bytes.

    Dispatch is *not* by tag alone: the buffer's tag must be the canonical
    kind name of the class it resolves to (a class re-registered under a
    second tag, or one whose registry entries disagree, is rejected with a
    clear :class:`SerializationError` instead of silently rehydrating).
    Pass ``expect_kind`` to additionally reject buffers holding a different
    estimator kind than the caller planned for.

    ``storage`` / ``storage_path`` override the counter-storage backend the
    buffer recorded (forwarded to ``from_bytes``); only valid for kinds
    whose ``from_bytes`` accepts them — the table sketches.
    """
    tag = peek_tag(data)
    cls = _REGISTRY.get(tag)
    if cls is None:
        _import_default_registrations()
        cls = _REGISTRY.get(tag)
    if cls is None:
        raise SerializationError(f"unknown sketch tag {tag!r}")
    canonical = getattr(cls, "SERIAL_TAG", None)
    if canonical != tag:
        raise SerializationError(
            f"tag {tag!r} resolves to {cls.__name__}, whose canonical kind "
            f"is {canonical!r}; refusing to dispatch by tag alone (load "
            f"through the canonical kind instead)"
        )
    registered_kind = getattr(cls, "ESTIMATOR_KIND", None)
    if registered_kind is not None and registered_kind != tag:
        raise SerializationError(
            f"tag {tag!r} belongs to {cls.__name__}, which is registered "
            f"in the estimator registry under kind {registered_kind!r}; "
            "the build and loads name spaces must agree"
        )
    if expect_kind is not None and tag != expect_kind:
        raise SerializationError(
            f"buffer holds a {tag!r} estimator, expected kind {expect_kind!r}"
        )
    if storage is not None or storage_path is not None:
        return cls.from_bytes(data, storage=storage, storage_path=storage_path)
    return cls.from_bytes(data)


# ----------------------------------------------------------------------
# key/count dictionaries (exact counter, heavy-hitter summaries, LCMS)
# ----------------------------------------------------------------------
def encode_key(key: Hashable) -> list:
    if isinstance(key, bool):
        return ["b", key]
    if isinstance(key, (int, np.integer)):
        return ["i", int(key)]
    if isinstance(key, str):
        return ["s", key]
    if isinstance(key, (float, np.floating)):
        return ["f", float(key)]
    if key is None:
        return ["n"]
    raise SerializationError(
        f"key {key!r} of type {type(key).__name__} is not serializable "
        "(int, str, float, bool and None keys are supported)"
    )


def decode_key(encoded: list) -> Hashable:
    try:
        kind = encoded[0]
        if kind == "i":
            return int(encoded[1])
        if kind == "s":
            return encoded[1]
        if kind == "f":
            return float(encoded[1])
        if kind == "b":
            return bool(encoded[1])
        if kind == "n":
            return None
    except (IndexError, TypeError, ValueError) as error:
        raise SerializationError(f"corrupt key encoding: {error}") from error
    raise SerializationError(f"unknown key kind {encoded!r}")


def encode_counts(
    mapping: Dict[Hashable, int], name: str
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Encode a key→int mapping as ``(state_fragment, arrays_fragment)``.

    All-integer key sets take the fast path: two aligned int64 arrays in the
    binary blob.  Mixed/string keys fall back to tagged pairs in the JSON
    metadata, which round-trips exactly but costs JSON encoding.
    """
    keys = list(mapping.keys())
    values = list(mapping.values())
    if keys and all(
        isinstance(key, (int, np.integer)) and not isinstance(key, bool)
        for key in keys
    ):
        try:
            key_array = np.array([int(key) for key in keys], dtype=np.int64)
        except OverflowError:
            key_array = None
        if key_array is not None:
            return {f"{name}_mode": "int64"}, {
                f"{name}_keys": key_array,
                f"{name}_values": np.array([int(v) for v in values], dtype=np.int64),
            }
    items = [[encode_key(key), int(value)] for key, value in mapping.items()]
    return {f"{name}_mode": "json", f"{name}_items": items}, {}


def decode_counts(
    state: dict, arrays: Dict[str, np.ndarray], name: str
) -> Dict[Hashable, int]:
    """Inverse of :func:`encode_counts`."""
    mode = state.get(f"{name}_mode")
    if mode == "int64":
        try:
            keys = arrays[f"{name}_keys"].tolist()
            values = arrays[f"{name}_values"].tolist()
        except KeyError as error:
            raise SerializationError(f"missing arrays for mapping {name!r}") from error
        if len(keys) != len(values):
            raise SerializationError(f"misaligned key/value arrays for {name!r}")
        return dict(zip(keys, values))
    if mode == "json":
        items = state.get(f"{name}_items")
        if not isinstance(items, list):
            raise SerializationError(f"missing items for mapping {name!r}")
        return {decode_key(key): int(value) for key, value in items}
    raise SerializationError(f"unknown mapping mode {mode!r} for {name!r}")
