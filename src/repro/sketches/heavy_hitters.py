"""Deterministic heavy-hitter algorithms (Misra–Gries and Space-Saving).

The paper motivates frequency estimation partly through heavy-hitter
detection (its reference [6] is Misra & Gries' classic algorithm).  These two
counter-based summaries complement the sketches: they keep ``k`` counters,
process the stream in one pass, and guarantee that every element with
frequency above ``||f||_1 / k`` is retained.

* :class:`MisraGries` — the classic decrement-all summary; estimates are
  *under*-estimates with additive error at most ``||f||_1 / (k + 1)``.
* :class:`SpaceSaving` — Metwally et al.'s replace-the-minimum summary;
  estimates are *over*-estimates with additive error at most the minimum
  tracked count.

Both implement the common :class:`~repro.sketches.base.FrequencyEstimator`
interface so they can be dropped into the evaluation harness, and both expose
``heavy_hitters(threshold)`` for the detection use case.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.sketches.base import BYTES_PER_BUCKET, FrequencyEstimator, as_key_batch
from repro.streams.stream import Element

__all__ = ["MisraGries", "SpaceSaving"]


def _replay_batch_in_order(summary, keys, counts, tracked: Dict) -> None:
    """Shared order-faithful batch replay for the counter summaries.

    Tracked keys take an O(1) bulk increment (equivalent to ``counts[i]``
    consecutive scalar updates, since an incremented key stays tracked);
    untracked keys run the summary's full scalar insert/evict logic.
    """
    key_batch, count_array = as_key_batch(keys, counts)
    for key, count in zip(key_batch, count_array):
        count = int(count)
        if count and key in tracked:
            tracked[key] += count
            summary._stream_length += count
        else:
            for _ in range(count):
                summary._update_key(key)


class MisraGries(FrequencyEstimator):
    """Misra–Gries summary with ``num_counters`` counters.

    Every point query under-estimates the true frequency by at most
    ``(stream length) / (num_counters + 1)``.
    """

    def __init__(self, num_counters: int) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        self.num_counters = num_counters
        self._counters: Dict[Hashable, int] = {}
        self._stream_length = 0

    def update(self, element: Element) -> None:
        self._update_key(element.key)

    def _update_key(self, key: Hashable) -> None:
        self._stream_length += 1
        if key in self._counters:
            self._counters[key] += 1
        elif len(self._counters) < self.num_counters:
            self._counters[key] = 1
        else:
            # Decrement every counter; drop the ones that reach zero.
            for tracked in list(self._counters):
                self._counters[tracked] -= 1
                if self._counters[tracked] == 0:
                    del self._counters[tracked]

    def update_batch(self, keys, counts=None) -> None:
        """Replay a batch in arrival order (see :func:`_replay_batch_in_order`).

        The summary is inherently sequential (decrements depend on the
        current counter set), so the batch path is an optimized in-order
        replay rather than a vectorized scatter.
        """
        _replay_batch_in_order(self, keys, counts, self._counters)

    def estimate(self, element: Element) -> float:
        return float(self._counters.get(element.key, 0))

    def estimate_batch(self, keys) -> np.ndarray:
        key_batch, _ = as_key_batch(keys)
        counters = self._counters
        return np.fromiter(
            (counters.get(key, 0) for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    @property
    def size_bytes(self) -> int:
        # One counter plus one stored ID per slot (ID charged like a bucket).
        return 2 * BYTES_PER_BUCKET * self.num_counters

    @property
    def error_bound(self) -> float:
        """Maximum possible under-estimation of any point query so far."""
        return self._stream_length / (self.num_counters + 1)

    def heavy_hitters(self, threshold_fraction: float) -> List[Tuple[Hashable, int]]:
        """Candidate elements with frequency above ``threshold_fraction * N``.

        Guaranteed to contain every true heavy hitter (no false negatives);
        may contain false positives, as is inherent to the summary.
        """
        if not 0 < threshold_fraction < 1:
            raise ValueError("threshold_fraction must lie in (0, 1)")
        cutoff = threshold_fraction * self._stream_length - self.error_bound
        return sorted(
            ((key, count) for key, count in self._counters.items() if count > cutoff),
            key=lambda item: item[1],
            reverse=True,
        )

    def tracked_items(self) -> Dict[Hashable, int]:
        """The current (key, counter) pairs."""
        return dict(self._counters)


class SpaceSaving(FrequencyEstimator):
    """Space-Saving summary with ``num_counters`` counters.

    Point queries for tracked elements over-estimate by at most the element's
    stored error term; untracked elements are estimated by the minimum
    tracked count (still an over-estimate of their true frequency).
    """

    def __init__(self, num_counters: int) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        self.num_counters = num_counters
        self._counts: Dict[Hashable, int] = {}
        self._errors: Dict[Hashable, int] = {}
        self._stream_length = 0

    def _min_tracked(self) -> Tuple[Hashable, int]:
        key = min(self._counts, key=self._counts.get)
        return key, self._counts[key]

    def update(self, element: Element) -> None:
        self._update_key(element.key)

    def _update_key(self, key: Hashable) -> None:
        self._stream_length += 1
        if key in self._counts:
            self._counts[key] += 1
        elif len(self._counts) < self.num_counters:
            self._counts[key] = 1
            self._errors[key] = 0
        else:
            evicted_key, evicted_count = self._min_tracked()
            del self._counts[evicted_key]
            del self._errors[evicted_key]
            self._counts[key] = evicted_count + 1
            self._errors[key] = evicted_count

    def update_batch(self, keys, counts=None) -> None:
        """Replay a batch in arrival order (see :func:`_replay_batch_in_order`)."""
        _replay_batch_in_order(self, keys, counts, self._counts)

    def estimate(self, element: Element) -> float:
        key = element.key
        if key in self._counts:
            return float(self._counts[key])
        if self._counts and len(self._counts) >= self.num_counters:
            return float(self._min_tracked()[1])
        return 0.0

    def estimate_batch(self, keys) -> np.ndarray:
        key_batch, _ = as_key_batch(keys)
        tracked = self._counts
        if tracked and len(tracked) >= self.num_counters:
            fallback = float(self._min_tracked()[1])
        else:
            fallback = 0.0
        return np.fromiter(
            (float(tracked[key]) if key in tracked else fallback for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    def guaranteed_count(self, element: Element) -> float:
        """A lower bound on the true frequency of a tracked element."""
        key = element.key
        if key not in self._counts:
            return 0.0
        return float(self._counts[key] - self._errors[key])

    @property
    def size_bytes(self) -> int:
        # Count + error + stored ID per slot.
        return 3 * BYTES_PER_BUCKET * self.num_counters

    def heavy_hitters(self, threshold_fraction: float) -> List[Tuple[Hashable, int]]:
        """Tracked elements whose count exceeds ``threshold_fraction * N``."""
        if not 0 < threshold_fraction < 1:
            raise ValueError("threshold_fraction must lie in (0, 1)")
        cutoff = threshold_fraction * self._stream_length
        return sorted(
            ((key, count) for key, count in self._counts.items() if count > cutoff),
            key=lambda item: item[1],
            reverse=True,
        )

    def tracked_items(self) -> Dict[Hashable, int]:
        """The current (key, count) pairs."""
        return dict(self._counts)
