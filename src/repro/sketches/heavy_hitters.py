"""Deterministic heavy-hitter algorithms (Misra–Gries and Space-Saving).

The paper motivates frequency estimation partly through heavy-hitter
detection (its reference [6] is Misra & Gries' classic algorithm).  These two
counter-based summaries complement the sketches: they keep ``k`` counters,
process the stream in one pass, and guarantee that every element with
frequency above ``||f||_1 / k`` is retained.

* :class:`MisraGries` — the classic decrement-all summary; estimates are
  *under*-estimates with additive error at most ``||f||_1 / (k + 1)``.
* :class:`SpaceSaving` — Metwally et al.'s replace-the-minimum summary;
  estimates are *over*-estimates with additive error at most the minimum
  tracked count.

Both implement the common :class:`~repro.sketches.base.FrequencyEstimator`
interface so they can be dropped into the evaluation harness, and both expose
``heavy_hitters(threshold)`` for the detection use case.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.api.registry import register_estimator
from repro.sketches.base import (
    BYTES_PER_BUCKET,
    FrequencyEstimator,
    IncompatibleSketchError,
    as_key_batch,
)
from repro.sketches.serialization import (
    decode_counts,
    encode_counts,
    pack,
    register_sketch,
    unpack,
)
from repro.streams.stream import Element

__all__ = ["MisraGries", "SpaceSaving"]


def _replay_batch_in_order(summary, key_batch, count_array, tracked: Dict) -> None:
    """Shared order-faithful batch replay for the counter summaries.

    Tracked keys take an O(1) bulk increment (equivalent to ``counts[i]``
    consecutive scalar updates, since an incremented key stays tracked);
    untracked keys run the summary's full scalar insert/evict logic.
    """
    for key, count in zip(key_batch, count_array):
        count = int(count)
        if count and key in tracked:
            tracked[key] += count
            summary._stream_length += count
        else:
            for _ in range(count):
                summary._update_key(key)


#: Schema shared by the two counter summaries (both fully deterministic).
_COUNTER_SUMMARY_SCHEMA = {
    "num_counters": {"type": "int", "min": 1, "required": True},
}


@register_estimator("misra_gries", schema=_COUNTER_SUMMARY_SCHEMA, seedless=True)
@register_sketch("misra_gries")
class MisraGries(FrequencyEstimator):
    """Misra–Gries summary with ``num_counters`` counters.

    Every point query under-estimates the true frequency by at most
    ``(stream length) / (num_counters + 1)``.
    """

    def __init__(self, num_counters: int) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        self.num_counters = num_counters
        self._counters: Dict[Hashable, int] = {}
        self._stream_length = 0

    def _describe_params(self) -> dict:
        return {"num_counters": self.num_counters}

    def update(self, element: Element) -> None:
        self._update_key(element.key)

    def _update_key(self, key: Hashable) -> None:
        self._stream_length += 1
        if key in self._counters:
            self._counters[key] += 1
        elif len(self._counters) < self.num_counters:
            self._counters[key] = 1
        else:
            # Decrement every counter; drop the ones that reach zero.
            for tracked in list(self._counters):
                self._counters[tracked] -= 1
                if self._counters[tracked] == 0:
                    del self._counters[tracked]

    def _ingest(self, key_batch, count_array) -> None:
        """Replay a batch in arrival order (see :func:`_replay_batch_in_order`).

        The summary is inherently sequential (decrements depend on the
        current counter set), so the batch path is an optimized in-order
        replay rather than a vectorized scatter.
        """
        _replay_batch_in_order(self, key_batch, count_array, self._counters)

    def merge(self, other: "MisraGries") -> "MisraGries":
        """Merge two summaries with the standard Misra–Gries reduction.

        Counters add pointwise; if the union then tracks more than
        ``num_counters`` keys, the ``(num_counters + 1)``-th largest counter
        value is subtracted from every counter and non-positive counters are
        dropped — the same operation as a run of decrement steps.  Per
        Agarwal et al. (*Mergeable Summaries*, 2012) the merged summary keeps
        the Misra–Gries guarantee over the combined stream: every estimate
        under-estimates by at most ``(N₁ + N₂) / (num_counters + 1)``.
        """
        if not isinstance(other, MisraGries):
            raise IncompatibleSketchError(
                f"cannot merge MisraGries with {type(other).__name__}"
            )
        if self.num_counters != other.num_counters:
            raise IncompatibleSketchError(
                f"num_counters mismatch: {self.num_counters} vs {other.num_counters}"
            )
        merged = dict(self._counters)
        for key, count in other._counters.items():
            merged[key] = merged.get(key, 0) + count
        if len(merged) > self.num_counters:
            cutoff = sorted(merged.values(), reverse=True)[self.num_counters]
            merged = {
                key: count - cutoff
                for key, count in merged.items()
                if count - cutoff > 0
            }
        self._counters = merged
        self._stream_length += other._stream_length
        return self

    def to_bytes(self) -> bytes:
        state, arrays = encode_counts(self._counters, "counters")
        state["num_counters"] = self.num_counters
        state["stream_length"] = self._stream_length
        return pack("misra_gries", state, arrays)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MisraGries":
        _, state, arrays = unpack(data, expect_tag="misra_gries")
        summary = cls(int(state["num_counters"]))
        summary._counters = decode_counts(state, arrays, "counters")
        summary._stream_length = int(state["stream_length"])
        return summary

    def estimate(self, element: Element) -> float:
        return float(self._counters.get(element.key, 0))

    def estimate_batch(self, keys) -> np.ndarray:
        key_batch, _ = as_key_batch(keys)
        counters = self._counters
        return np.fromiter(
            (counters.get(key, 0) for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    @property
    def size_bytes(self) -> int:
        # One counter plus one stored ID per slot (ID charged like a bucket).
        return 2 * BYTES_PER_BUCKET * self.num_counters

    @property
    def error_bound(self) -> float:
        """Maximum possible under-estimation of any point query so far."""
        return self._stream_length / (self.num_counters + 1)

    def heavy_hitters(self, threshold_fraction: float) -> List[Tuple[Hashable, int]]:
        """Candidate elements with frequency above ``threshold_fraction * N``.

        Guaranteed to contain every true heavy hitter (no false negatives);
        may contain false positives, as is inherent to the summary.
        """
        if not 0 < threshold_fraction < 1:
            raise ValueError("threshold_fraction must lie in (0, 1)")
        cutoff = threshold_fraction * self._stream_length - self.error_bound
        return sorted(
            ((key, count) for key, count in self._counters.items() if count > cutoff),
            key=lambda item: item[1],
            reverse=True,
        )

    def tracked_items(self) -> Dict[Hashable, int]:
        """The current (key, counter) pairs."""
        return dict(self._counters)


@register_estimator("space_saving", schema=_COUNTER_SUMMARY_SCHEMA, seedless=True)
@register_sketch("space_saving")
class SpaceSaving(FrequencyEstimator):
    """Space-Saving summary with ``num_counters`` counters.

    Point queries for tracked elements over-estimate by at most the element's
    stored error term; untracked elements are estimated by the minimum
    tracked count (still an over-estimate of their true frequency).
    """

    def __init__(self, num_counters: int) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        self.num_counters = num_counters
        self._counts: Dict[Hashable, int] = {}
        self._errors: Dict[Hashable, int] = {}
        self._stream_length = 0

    def _describe_params(self) -> dict:
        return {"num_counters": self.num_counters}

    def _min_tracked(self) -> Tuple[Hashable, int]:
        key = min(self._counts, key=self._counts.get)
        return key, self._counts[key]

    def update(self, element: Element) -> None:
        self._update_key(element.key)

    def _update_key(self, key: Hashable) -> None:
        self._stream_length += 1
        if key in self._counts:
            self._counts[key] += 1
        elif len(self._counts) < self.num_counters:
            self._counts[key] = 1
            self._errors[key] = 0
        else:
            evicted_key, evicted_count = self._min_tracked()
            del self._counts[evicted_key]
            del self._errors[evicted_key]
            self._counts[key] = evicted_count + 1
            self._errors[key] = evicted_count

    def _ingest(self, key_batch, count_array) -> None:
        """Replay a batch in arrival order (see :func:`_replay_batch_in_order`)."""
        _replay_batch_in_order(self, key_batch, count_array, self._counts)

    def merge(self, other: "SpaceSaving") -> "SpaceSaving":
        """Merge two summaries with the standard Space-Saving combine.

        For every key in either summary the merged count is the sum of what
        each side knows: its tracked count where tracked, otherwise that
        side's minimum tracked count (the usual Space-Saving upper bound for
        an untracked key, 0 while a summary has spare capacity).  Error terms
        combine the same way, then only the top ``num_counters`` keys by
        merged count are kept.  Estimates remain over-estimates of the true
        combined frequencies (cf. Cafaro et al.'s parallel Space-Saving).
        """
        if not isinstance(other, SpaceSaving):
            raise IncompatibleSketchError(
                f"cannot merge SpaceSaving with {type(other).__name__}"
            )
        if self.num_counters != other.num_counters:
            raise IncompatibleSketchError(
                f"num_counters mismatch: {self.num_counters} vs {other.num_counters}"
            )
        min_self = (
            self._min_tracked()[1]
            if len(self._counts) >= self.num_counters
            else 0
        )
        min_other = (
            other._min_tracked()[1]
            if len(other._counts) >= other.num_counters
            else 0
        )
        merged_counts: Dict[Hashable, int] = {}
        merged_errors: Dict[Hashable, int] = {}
        # Deterministic key order: self's keys first, then other's new ones.
        for key in list(self._counts) + [
            key for key in other._counts if key not in self._counts
        ]:
            # A side that does not track the key contributes its min tracked
            # count as both count and error: the key's true count on that
            # side lies anywhere in [0, min].
            count_self = self._counts.get(key, min_self)
            error_self = self._errors.get(key, min_self)
            count_other = other._counts.get(key, min_other)
            error_other = other._errors.get(key, min_other)
            merged_counts[key] = count_self + count_other
            merged_errors[key] = error_self + error_other
        if len(merged_counts) > self.num_counters:
            keep = sorted(
                merged_counts, key=merged_counts.get, reverse=True
            )[: self.num_counters]
            merged_counts = {key: merged_counts[key] for key in keep}
            merged_errors = {key: merged_errors[key] for key in keep}
        self._counts = merged_counts
        self._errors = merged_errors
        self._stream_length += other._stream_length
        return self

    def to_bytes(self) -> bytes:
        count_state, count_arrays = encode_counts(self._counts, "counts")
        error_state, error_arrays = encode_counts(self._errors, "errors")
        state = {
            "num_counters": self.num_counters,
            "stream_length": self._stream_length,
            **count_state,
            **error_state,
        }
        arrays = {**count_arrays, **error_arrays}
        return pack("space_saving", state, arrays)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SpaceSaving":
        _, state, arrays = unpack(data, expect_tag="space_saving")
        summary = cls(int(state["num_counters"]))
        summary._counts = decode_counts(state, arrays, "counts")
        summary._errors = decode_counts(state, arrays, "errors")
        summary._stream_length = int(state["stream_length"])
        return summary

    def estimate(self, element: Element) -> float:
        key = element.key
        if key in self._counts:
            return float(self._counts[key])
        if self._counts and len(self._counts) >= self.num_counters:
            return float(self._min_tracked()[1])
        return 0.0

    def estimate_batch(self, keys) -> np.ndarray:
        key_batch, _ = as_key_batch(keys)
        tracked = self._counts
        if tracked and len(tracked) >= self.num_counters:
            fallback = float(self._min_tracked()[1])
        else:
            fallback = 0.0
        return np.fromiter(
            (float(tracked[key]) if key in tracked else fallback for key in key_batch),
            dtype=np.float64,
            count=len(key_batch),
        )

    def guaranteed_count(self, element: Element) -> float:
        """A lower bound on the true frequency of a tracked element."""
        key = element.key
        if key not in self._counts:
            return 0.0
        return float(self._counts[key] - self._errors[key])

    @property
    def size_bytes(self) -> int:
        # Count + error + stored ID per slot.
        return 3 * BYTES_PER_BUCKET * self.num_counters

    def heavy_hitters(self, threshold_fraction: float) -> List[Tuple[Hashable, int]]:
        """Tracked elements whose count exceeds ``threshold_fraction * N``."""
        if not 0 < threshold_fraction < 1:
            raise ValueError("threshold_fraction must lie in (0, 1)")
        cutoff = threshold_fraction * self._stream_length
        return sorted(
            ((key, count) for key, count in self._counts.items() if count > cutoff),
            key=lambda item: item[1],
            reverse=True,
        )

    def tracked_items(self) -> Dict[Hashable, int]:
        """The current (key, count) pairs."""
        return dict(self._counts)
