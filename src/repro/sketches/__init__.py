"""Conventional sketching substrates.

Random-hashing based frequency estimators used as baselines in the paper's
evaluation, plus the probabilistic data structures the proposed approach
builds on:

* :class:`~repro.sketches.count_min.CountMinSketch` — the standard CMS
  (``count-min`` in the paper), with an optional conservative-update variant.
* :class:`~repro.sketches.count_sketch.CountSketch` — the Count Sketch of
  Charikar et al., included for completeness (the paper discusses it as the
  other canonical frequency sketch).
* :class:`~repro.sketches.learned_cms.LearnedCountMinSketch` — the Learned
  CMS of Hsu et al. (``heavy-hitter`` in the paper), with a pluggable
  heavy-hitter oracle.
* :class:`~repro.sketches.bloom.BloomFilter` — used by the adaptive counting
  extension of the proposed estimator.
* :mod:`repro.sketches.hashing` — seeded universal / tabulation hash families
  implementing the random hash functions all of the above rely on.
"""

from repro.sketches.base import (
    FrequencyEstimator,
    ExactCounter,
    IncompatibleSketchError,
    as_key_batch,
)
from repro.sketches.serialization import SerializationError, loads
from repro.sketches.hashing import (
    UniversalHashFamily,
    UniversalHash,
    TabulationHash,
    fingerprint64,
    fingerprint64_batch,
)
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.learned_cms import (
    HeavyHitterOracle,
    IdealHeavyHitterOracle,
    ClassifierHeavyHitterOracle,
    LearnedCountMinSketch,
)
from repro.sketches.bloom import BloomFilter
from repro.sketches.heavy_hitters import MisraGries, SpaceSaving
from repro.sketches.ams import AmsSketch

__all__ = [
    "FrequencyEstimator",
    "ExactCounter",
    "IncompatibleSketchError",
    "SerializationError",
    "loads",
    "as_key_batch",
    "fingerprint64",
    "fingerprint64_batch",
    "UniversalHashFamily",
    "UniversalHash",
    "TabulationHash",
    "CountMinSketch",
    "CountSketch",
    "HeavyHitterOracle",
    "IdealHeavyHitterOracle",
    "ClassifierHeavyHitterOracle",
    "LearnedCountMinSketch",
    "BloomFilter",
    "MisraGries",
    "SpaceSaving",
    "AmsSketch",
]
