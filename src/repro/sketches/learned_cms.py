"""Learned Count-Min Sketch (Hsu, Indyk, Katabi & Vakilian, ICLR 2019).

The learning-augmented baseline the paper compares against (called
``heavy-hitter`` in the experiments).  A heavy-hitter oracle decides, per
element, whether it is expected to be among the most frequent elements:

* predicted heavy hitters get *unique* buckets holding exact counts (each
  unique bucket also stores the element ID, so it is charged twice the space
  of a normal bucket — Section 2.2 of the paper);
* everything else is hashed into a standard Count-Min Sketch occupying the
  remaining buckets.

The oracle is pluggable.  :class:`IdealHeavyHitterOracle` knows the true IDs
of the heavy hitters (the idealized variant the paper benchmarks against,
which upper-bounds what any learned oracle could achieve);
:class:`ClassifierHeavyHitterOracle` wraps any classifier from
:mod:`repro.ml` together with a featurizer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from repro.api.registry import register_estimator
from repro.api.specs import SpecError
from repro.sketches.base import (
    BYTES_PER_BUCKET,
    FrequencyEstimator,
    IncompatibleSketchError,
    as_key_batch,
)
from repro.sketches.count_min import CountMinSketch
from repro.sketches.serialization import (
    SerializationError,
    decode_counts,
    decode_key,
    encode_counts,
    encode_key,
    pack,
    register_sketch,
    unpack,
)
from repro.streams.stream import Element

__all__ = [
    "rank_heavy_keys",
    "HeavyHitterOracle",
    "IdealHeavyHitterOracle",
    "ClassifierHeavyHitterOracle",
    "LearnedCountMinSketch",
]


def rank_heavy_keys(frequencies, num_heavy: int) -> List[Hashable]:
    """Top ``num_heavy`` keys by frequency, in deterministic rank order.

    The single source of truth for heavy-hitter selection: the ideal oracle
    and the spec-building drivers both rank through here, so a spec's
    ``heavy_keys`` list always matches what the oracle would have chosen
    (ties break by the mapping's iteration order, stably).
    """
    if num_heavy < 0:
        raise ValueError("num_heavy must be non-negative")
    ranked = sorted(frequencies.items(), key=lambda kv: kv[1], reverse=True)
    return [key for key, _ in ranked[:num_heavy]]


class HeavyHitterOracle(ABC):
    """Decides whether an element should receive a unique bucket."""

    @abstractmethod
    def is_heavy(self, element: Element) -> bool:
        """Return True if ``element`` is predicted to be a heavy hitter."""

    @property
    def uses_features(self) -> bool:
        """Whether predictions depend on element features (not just the key).

        Replay loops use this to decide if raw keys are enough or whole
        elements must be kept; the conservative default is True.
        """
        return True

    def is_heavy_batch(self, elements: Sequence[Element]) -> np.ndarray:
        """Vectorized prediction; the default loops over :meth:`is_heavy`."""
        return np.fromiter(
            (self.is_heavy(element) for element in elements),
            dtype=bool,
            count=len(elements),
        )


class IdealHeavyHitterOracle(HeavyHitterOracle):
    """An oracle with perfect knowledge of the heavy-hitter IDs.

    The paper evaluates LCMS with exactly this idealization: the IDs of the
    top elements of the *test* period are assumed known, which dominates any
    realistically learnable oracle.
    """

    def __init__(self, heavy_keys: Iterable[Hashable]) -> None:
        self._heavy_keys: frozenset = frozenset(heavy_keys)

    @classmethod
    def from_frequencies(cls, frequencies, num_heavy: int) -> "IdealHeavyHitterOracle":
        """Build the oracle from a frequency mapping, taking the top ``num_heavy``."""
        return cls(rank_heavy_keys(frequencies, num_heavy))

    @property
    def uses_features(self) -> bool:
        """Membership is by key only; raw-key replay is safe."""
        return False

    @property
    def heavy_keys(self) -> frozenset:
        """The known heavy-hitter key set (immutable view, no copy)."""
        return self._heavy_keys

    def is_heavy(self, element: Element) -> bool:
        return element.key in self._heavy_keys

    def is_heavy_batch(self, elements: Sequence[Element]) -> np.ndarray:
        if type(self) is not IdealHeavyHitterOracle:
            # A subclass may override is_heavy; route through it so batch
            # and scalar predictions can never diverge.
            return super().is_heavy_batch(elements)
        heavy_keys = self._heavy_keys
        return np.fromiter(
            (element.key in heavy_keys for element in elements),
            dtype=bool,
            count=len(elements),
        )

    def __len__(self) -> int:
        return len(self._heavy_keys)


class ClassifierHeavyHitterOracle(HeavyHitterOracle):
    """An oracle backed by a binary classifier over element features.

    Parameters
    ----------
    classifier:
        Any fitted object with a ``predict(X)`` method returning 0/1 labels
        (1 = heavy), e.g. the classifiers in :mod:`repro.ml`.
    featurizer:
        Callable mapping an :class:`Element` to a 1-D feature array.  Defaults
        to the element's own feature vector.
    """

    def __init__(
        self,
        classifier,
        featurizer: Optional[Callable[[Element], "object"]] = None,
    ) -> None:
        self._classifier = classifier
        self._featurizer = featurizer or (lambda element: element.feature_array())

    def is_heavy(self, element: Element) -> bool:
        features = self._featurizer(element)
        prediction = self._classifier.predict([features])[0]
        return bool(prediction)

    def is_heavy_batch(self, elements: Sequence[Element]) -> np.ndarray:
        if len(elements) == 0:
            return np.zeros(0, dtype=bool)
        features = np.asarray([self._featurizer(element) for element in elements])
        return np.asarray(self._classifier.predict(features), dtype=bool)


def _check_heavy_keys(params: dict) -> None:
    keys = params.get("heavy_keys", [])
    for key in keys:
        if not isinstance(key, (int, float, str, bool)) and key is not None:
            raise SpecError(
                f"heavy_keys entries must be scalar keys, got {key!r}"
            )


def _build_learned_cms(cls, spec, context):
    """Build an LCMS with an ideal oracle over the spec's heavy keys."""
    params = dict(spec.params)
    heavy_keys = params.pop("heavy_keys", [])
    return cls(oracle=IdealHeavyHitterOracle(heavy_keys), **params)


@register_estimator(
    "learned_cms",
    schema={
        "total_buckets": {"type": "int", "min": 1, "required": True},
        "num_heavy_buckets": {"type": "int", "min": 0, "required": True},
        "heavy_keys": {"type": "list"},
        "depth": {"type": "int", "min": 1},
        "seed": {"type": "int", "nullable": True},
    },
    builder=_build_learned_cms,
    check=_check_heavy_keys,
)
@register_sketch("learned_cms")
class LearnedCountMinSketch(FrequencyEstimator):
    """LCMS: unique buckets for predicted heavy hitters + CMS for the rest.

    Parameters
    ----------
    total_buckets:
        Total bucket budget ``b``.  Unique buckets cost 2 bucket-equivalents,
        so with ``num_heavy_buckets = b_h`` the CMS receives
        ``b - 2 * b_h`` buckets.
    num_heavy_buckets:
        Number of unique buckets reserved for heavy hitters (``b_heavy``).
    oracle:
        The heavy-hitter oracle.
    depth:
        Depth of the backing Count-Min Sketch.
    seed:
        Seed for the CMS hash functions.
    """

    def __init__(
        self,
        total_buckets: int,
        num_heavy_buckets: int,
        oracle: HeavyHitterOracle,
        depth: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        if total_buckets <= 0:
            raise ValueError("total_buckets must be positive")
        if num_heavy_buckets < 0:
            raise ValueError("num_heavy_buckets must be non-negative")
        random_buckets = total_buckets - 2 * num_heavy_buckets
        if random_buckets < depth:
            raise ValueError(
                "heavy buckets leave too little room for the random sketch: "
                f"{random_buckets} buckets remain but depth={depth}"
            )
        self.total_buckets = total_buckets
        self.num_heavy_buckets = num_heavy_buckets
        self.depth = depth
        self.seed = seed
        self.oracle = oracle
        self._heavy_counts: Dict[Hashable, int] = {}
        # Heavy-predicted keys that arrived after the unique buckets filled:
        # their counts live in the CMS.  merge() consults this set — a key
        # tracked exactly on one side but CMS-held on the other cannot be
        # combined without losing the CMS-held mass.
        self._overflow_keys: set = set()
        self._sketch = CountMinSketch.from_total_buckets(
            random_buckets, depth=depth, seed=seed
        )

    @property
    def routes_by_features(self) -> bool:
        """Whether batch replay must keep whole elements for oracle routing."""
        return self.oracle.uses_features

    def update(self, element: Element) -> None:
        if self.oracle.is_heavy(element):
            key = element.key
            if key in self._heavy_counts or len(self._heavy_counts) < self.num_heavy_buckets:
                self._heavy_counts[key] = self._heavy_counts.get(key, 0) + 1
                return
            self._overflow_keys.add(key)
        self._sketch.update(element)

    def estimate(self, element: Element) -> float:
        if self._route_to_heavy(element):
            return float(self._heavy_counts.get(element.key, 0))
        return self._sketch.estimate(element)

    def _route_to_heavy(self, element: Element) -> bool:
        """Heavy prediction AND room left in the unique-bucket area."""
        if not self.oracle.is_heavy(element):
            return False
        if element.key in self._heavy_counts:
            return True
        return len(self._heavy_counts) < self.num_heavy_buckets

    # ------------------------------------------------------------------
    # vectorized batch path
    # ------------------------------------------------------------------
    def _batch_routing(self, keys, counts):
        """Normalize a batch and compute per-arrival oracle predictions."""
        elements: Optional[List[Element]] = None
        if not isinstance(keys, np.ndarray):
            items = list(keys)
            if items and isinstance(items[0], Element):
                elements = items
                keys = items
        key_batch, count_array = as_key_batch(keys, counts)
        if type(self.oracle) is IdealHeavyHitterOracle:
            # Key-only fast path for the exact class (no Element
            # construction).  Subclasses may override is_heavy, so they take
            # the generic is_heavy_batch route below.
            heavy_keys = self.oracle.heavy_keys
            heavy_flags = np.fromiter(
                (key in heavy_keys for key in key_batch),
                dtype=bool,
                count=len(key_batch),
            )
        else:
            if elements is None:
                elements = [Element(key=key) for key in key_batch]
            heavy_flags = self.oracle.is_heavy_batch(elements)
        return key_batch, count_array, heavy_flags

    def update_batch(self, keys, counts=None) -> None:
        """Route a batch in arrival order; light keys hit the CMS in one go.

        The unique-bucket capacity check is sequential (first arrivals claim
        the free slots), so routing walks the batch in order; the non-heavy
        remainder is order-independent inside the plain CMS and is ingested
        with a single vectorized ``update_batch``.
        """
        key_batch, count_array, heavy_flags = self._batch_routing(keys, counts)
        heavy_counts = self._heavy_counts
        light_keys: List[Hashable] = []
        light_counts: List[int] = []
        for key, count, heavy in zip(key_batch, count_array, heavy_flags):
            count = int(count)
            if count == 0:
                continue
            if heavy:
                if key in heavy_counts or len(heavy_counts) < self.num_heavy_buckets:
                    heavy_counts[key] = heavy_counts.get(key, 0) + count
                    continue
                self._overflow_keys.add(key)
            light_keys.append(key)
            light_counts.append(count)
        if light_keys:
            self._sketch.update_batch(light_keys, np.asarray(light_counts, dtype=np.int64))

    def estimate_batch(self, keys) -> np.ndarray:
        """Vectorized point queries mirroring the scalar routing."""
        key_batch, _, heavy_flags = self._batch_routing(keys, None)
        n = len(key_batch)
        estimates = np.zeros(n, dtype=np.float64)
        heavy_counts = self._heavy_counts
        has_room = len(heavy_counts) < self.num_heavy_buckets
        light_indices: List[int] = []
        light_keys: List[Hashable] = []
        for index, (key, heavy) in enumerate(zip(key_batch, heavy_flags)):
            if heavy and (key in heavy_counts or has_room):
                estimates[index] = float(heavy_counts.get(key, 0))
            else:
                light_indices.append(index)
                light_keys.append(key)
        if light_keys:
            estimates[light_indices] = self._sketch.estimate_batch(light_keys)
        return estimates

    @property
    def size_bytes(self) -> int:
        # Unique buckets store ID + count (2x cost); the CMS charges per
        # counter.  Merging can grow the unique-bucket table past the
        # configured capacity (disjoint heavy sets from different shards) —
        # charge what is actually held so size-matched comparisons stay
        # honest — and tracked overflow IDs cost one bucket-equivalent each.
        heavy_slots = max(self.num_heavy_buckets, len(self._heavy_counts))
        return (
            2 * BYTES_PER_BUCKET * heavy_slots
            + BYTES_PER_BUCKET * len(self._overflow_keys)
            + self._sketch.size_bytes
        )

    @property
    def num_heavy_tracked(self) -> int:
        """Number of elements currently held in unique buckets."""
        return len(self._heavy_counts)

    def _describe_params(self) -> dict:
        params = {
            "total_buckets": self.total_buckets,
            "num_heavy_buckets": self.num_heavy_buckets,
            "depth": self.depth,
            "seed": self.seed,
        }
        if type(self.oracle) is IdealHeavyHitterOracle:
            params["heavy_keys"] = sorted(self.oracle.heavy_keys, key=repr)
        else:
            params["oracle"] = type(self.oracle).__name__
        return params

    # ------------------------------------------------------------------
    # merge / serialization
    # ------------------------------------------------------------------
    def _oracles_compatible(self, other: "LearnedCountMinSketch") -> bool:
        if self.oracle is other.oracle:
            return True
        if (
            type(self.oracle) is IdealHeavyHitterOracle
            and type(other.oracle) is IdealHeavyHitterOracle
        ):
            return self.oracle.heavy_keys == other.oracle.heavy_keys
        return False

    def merge(self, other: "LearnedCountMinSketch") -> "LearnedCountMinSketch":
        """Merge by summing unique buckets and delegating to the backing CMS.

        Exact heavy-key counts add; the light remainder merges through
        :meth:`CountMinSketch.merge` (linear, bit-identical).  The merged
        result equals single-sketch ingestion whenever the unique-bucket
        capacity never bound during either half's ingestion.

        When capacity *did* bind, a key can be tracked exactly on one side
        while its other-side arrivals sit in that side's CMS.  Point queries
        route tracked keys to the unique buckets only, so such a key would
        silently shed its CMS-held mass and *under*-estimate — the one
        failure mode this sketch family is supposed to exclude.  Those
        merges are rejected with :class:`IncompatibleSketchError` instead
        (re-shard by key, or give the sketch more heavy buckets).  Overflow
        keys that stayed in the CMS on *both* sides are fine: their mass
        merges linearly and queries keep routing them to the CMS.
        """
        if not isinstance(other, LearnedCountMinSketch):
            raise IncompatibleSketchError(
                f"cannot merge LearnedCountMinSketch with {type(other).__name__}"
            )
        if (self.total_buckets, self.num_heavy_buckets) != (
            other.total_buckets,
            other.num_heavy_buckets,
        ):
            raise IncompatibleSketchError(
                f"budget mismatch: ({self.total_buckets}, {self.num_heavy_buckets}) "
                f"vs ({other.total_buckets}, {other.num_heavy_buckets})"
            )
        if not self._oracles_compatible(other):
            raise IncompatibleSketchError(
                "oracles differ: merged sketches must route heavy hitters "
                "identically (same oracle object, or ideal oracles over the "
                "same key set)"
            )
        shadowed = (self._overflow_keys & set(other._heavy_counts)) | (
            other._overflow_keys & set(self._heavy_counts)
        )
        if shadowed:
            raise IncompatibleSketchError(
                "unique-bucket capacity bound during ingestion: key(s) "
                f"{sorted(shadowed, key=repr)[:5]!r} are tracked exactly on "
                "one side but CMS-held on the other, so merging would drop "
                "their CMS-held counts (split the stream by key, or increase "
                "num_heavy_buckets)"
            )
        self._sketch.merge(other._sketch)
        heavy_counts = self._heavy_counts
        for key, count in other._heavy_counts.items():
            heavy_counts[key] = heavy_counts.get(key, 0) + count
        self._overflow_keys |= other._overflow_keys
        return self

    def to_bytes(self) -> bytes:
        """Serialize; requires an :class:`IdealHeavyHitterOracle`.

        A classifier-backed oracle wraps an arbitrary fitted model and
        featurizer closure, which this NumPy-buffer format cannot capture.
        """
        if type(self.oracle) is not IdealHeavyHitterOracle:
            raise SerializationError(
                "only LearnedCountMinSketch instances with an "
                "IdealHeavyHitterOracle are serializable, not "
                f"{type(self.oracle).__name__}"
            )
        state, arrays = encode_counts(self._heavy_counts, "heavy")
        state.update(
            {
                "total_buckets": self.total_buckets,
                "num_heavy_buckets": self.num_heavy_buckets,
                "depth": self.depth,
                "seed": self.seed,
                "oracle_keys": [encode_key(key) for key in sorted(
                    self.oracle.heavy_keys, key=repr
                )],
                "overflow_keys": [encode_key(key) for key in sorted(
                    self._overflow_keys, key=repr
                )],
            }
        )
        arrays["sketch"] = np.frombuffer(self._sketch.to_bytes(), dtype=np.uint8)
        return pack("learned_cms", state, arrays)

    @classmethod
    def from_bytes(cls, data: bytes) -> "LearnedCountMinSketch":
        _, state, arrays = unpack(data, expect_tag="learned_cms")
        sketch = cls.__new__(cls)
        sketch.total_buckets = int(state["total_buckets"])
        sketch.num_heavy_buckets = int(state["num_heavy_buckets"])
        sketch.depth = int(state.get("depth", 1))
        sketch.seed = state.get("seed")
        sketch.oracle = IdealHeavyHitterOracle(
            decode_key(encoded) for encoded in state["oracle_keys"]
        )
        sketch._heavy_counts = decode_counts(state, arrays, "heavy")
        sketch._overflow_keys = {
            decode_key(encoded) for encoded in state.get("overflow_keys", [])
        }
        sketch._sketch = CountMinSketch.from_bytes(arrays["sketch"].tobytes())
        return sketch
