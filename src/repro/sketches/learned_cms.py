"""Learned Count-Min Sketch (Hsu, Indyk, Katabi & Vakilian, ICLR 2019).

The learning-augmented baseline the paper compares against (called
``heavy-hitter`` in the experiments).  A heavy-hitter oracle decides, per
element, whether it is expected to be among the most frequent elements:

* predicted heavy hitters get *unique* buckets holding exact counts (each
  unique bucket also stores the element ID, so it is charged twice the space
  of a normal bucket — Section 2.2 of the paper);
* everything else is hashed into a standard Count-Min Sketch occupying the
  remaining buckets.

The oracle is pluggable.  :class:`IdealHeavyHitterOracle` knows the true IDs
of the heavy hitters (the idealized variant the paper benchmarks against,
which upper-bounds what any learned oracle could achieve);
:class:`ClassifierHeavyHitterOracle` wraps any classifier from
:mod:`repro.ml` together with a featurizer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Hashable, Iterable, Optional, Set

from repro.sketches.base import BYTES_PER_BUCKET, FrequencyEstimator
from repro.sketches.count_min import CountMinSketch
from repro.streams.stream import Element

__all__ = [
    "HeavyHitterOracle",
    "IdealHeavyHitterOracle",
    "ClassifierHeavyHitterOracle",
    "LearnedCountMinSketch",
]


class HeavyHitterOracle(ABC):
    """Decides whether an element should receive a unique bucket."""

    @abstractmethod
    def is_heavy(self, element: Element) -> bool:
        """Return True if ``element`` is predicted to be a heavy hitter."""


class IdealHeavyHitterOracle(HeavyHitterOracle):
    """An oracle with perfect knowledge of the heavy-hitter IDs.

    The paper evaluates LCMS with exactly this idealization: the IDs of the
    top elements of the *test* period are assumed known, which dominates any
    realistically learnable oracle.
    """

    def __init__(self, heavy_keys: Iterable[Hashable]) -> None:
        self._heavy_keys: Set[Hashable] = set(heavy_keys)

    @classmethod
    def from_frequencies(cls, frequencies, num_heavy: int) -> "IdealHeavyHitterOracle":
        """Build the oracle from a frequency mapping, taking the top ``num_heavy``."""
        if num_heavy < 0:
            raise ValueError("num_heavy must be non-negative")
        ranked = sorted(frequencies.items(), key=lambda kv: kv[1], reverse=True)
        return cls(key for key, _ in ranked[:num_heavy])

    def is_heavy(self, element: Element) -> bool:
        return element.key in self._heavy_keys

    def __len__(self) -> int:
        return len(self._heavy_keys)


class ClassifierHeavyHitterOracle(HeavyHitterOracle):
    """An oracle backed by a binary classifier over element features.

    Parameters
    ----------
    classifier:
        Any fitted object with a ``predict(X)`` method returning 0/1 labels
        (1 = heavy), e.g. the classifiers in :mod:`repro.ml`.
    featurizer:
        Callable mapping an :class:`Element` to a 1-D feature array.  Defaults
        to the element's own feature vector.
    """

    def __init__(
        self,
        classifier,
        featurizer: Optional[Callable[[Element], "object"]] = None,
    ) -> None:
        self._classifier = classifier
        self._featurizer = featurizer or (lambda element: element.feature_array())

    def is_heavy(self, element: Element) -> bool:
        features = self._featurizer(element)
        prediction = self._classifier.predict([features])[0]
        return bool(prediction)


class LearnedCountMinSketch(FrequencyEstimator):
    """LCMS: unique buckets for predicted heavy hitters + CMS for the rest.

    Parameters
    ----------
    total_buckets:
        Total bucket budget ``b``.  Unique buckets cost 2 bucket-equivalents,
        so with ``num_heavy_buckets = b_h`` the CMS receives
        ``b - 2 * b_h`` buckets.
    num_heavy_buckets:
        Number of unique buckets reserved for heavy hitters (``b_heavy``).
    oracle:
        The heavy-hitter oracle.
    depth:
        Depth of the backing Count-Min Sketch.
    seed:
        Seed for the CMS hash functions.
    """

    def __init__(
        self,
        total_buckets: int,
        num_heavy_buckets: int,
        oracle: HeavyHitterOracle,
        depth: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        if total_buckets <= 0:
            raise ValueError("total_buckets must be positive")
        if num_heavy_buckets < 0:
            raise ValueError("num_heavy_buckets must be non-negative")
        random_buckets = total_buckets - 2 * num_heavy_buckets
        if random_buckets < depth:
            raise ValueError(
                "heavy buckets leave too little room for the random sketch: "
                f"{random_buckets} buckets remain but depth={depth}"
            )
        self.total_buckets = total_buckets
        self.num_heavy_buckets = num_heavy_buckets
        self.oracle = oracle
        self._heavy_counts: Dict[Hashable, int] = {}
        self._sketch = CountMinSketch.from_total_buckets(
            random_buckets, depth=depth, seed=seed
        )

    def update(self, element: Element) -> None:
        if self._route_to_heavy(element):
            self._heavy_counts[element.key] = self._heavy_counts.get(element.key, 0) + 1
        else:
            self._sketch.update(element)

    def estimate(self, element: Element) -> float:
        if self._route_to_heavy(element):
            return float(self._heavy_counts.get(element.key, 0))
        return self._sketch.estimate(element)

    def _route_to_heavy(self, element: Element) -> bool:
        """Heavy prediction AND room left in the unique-bucket area."""
        if not self.oracle.is_heavy(element):
            return False
        if element.key in self._heavy_counts:
            return True
        return len(self._heavy_counts) < self.num_heavy_buckets

    @property
    def size_bytes(self) -> int:
        # Unique buckets store ID + count (2x cost); the CMS charges per counter.
        return (
            2 * BYTES_PER_BUCKET * self.num_heavy_buckets + self._sketch.size_bytes
        )

    @property
    def num_heavy_tracked(self) -> int:
        """Number of elements currently held in unique buckets."""
        return len(self._heavy_counts)
